"""Whole-program rules HC009/HC010 and the path-sensitive HC011.

The violation fixtures in conftest pin that each rule *fires*; these
tests pin the boundary: the sanctioned idioms each rule must accept
(lock-held helper methods, the executor's guarded bind/finalize pattern,
devtools owning the stopwatch) and the inter-procedural cases that
motivated the whole-program engine in the first place.
"""

from __future__ import annotations

from repro.devtools.lint import run_lint

from .conftest import write_tree


def _rules(diags):
    return [(d.path, d.line, d.rule) for d in diags]


# ---------------------------------------------------------------------------
# HC009 — lock discipline
# ---------------------------------------------------------------------------


def test_hc009_flags_each_unguarded_access_kind(tmp_path):
    write_tree(
        tmp_path,
        {
            "repro/service/box.py": (
                "import threading\n"
                "\n"
                "class Box:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "        self._items = []\n"
                "        self._count = 0\n"
                "\n"
                "    def add(self, item):\n"
                "        with self._lock:\n"
                "            self._items.append(item)\n"
                "            self._count += 1\n"
                "\n"
                "    def racy_read(self):\n"
                "        return len(self._items)\n"
                "\n"
                "    def racy_write(self):\n"
                "        self._count = 0\n"
                "\n"
                "    def racy_mutate(self):\n"
                "        self._items.clear()\n"
            ),
        },
    )
    diags = run_lint([tmp_path], root=tmp_path)
    assert _rules(diags) == [
        ("repro/service/box.py", 15, "HC009"),
        ("repro/service/box.py", 18, "HC009"),
        ("repro/service/box.py", 21, "HC009"),
    ]


def test_hc009_accepts_fully_locked_class_and_init(tmp_path):
    write_tree(
        tmp_path,
        {
            "repro/service/ok_box.py": (
                "import threading\n"
                "\n"
                "class Box:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "        self._items = []\n"
                "        self._items.append(0)  # pre-publication: no lock needed\n"
                "\n"
                "    def add(self, item):\n"
                "        with self._lock:\n"
                "            self._items.append(item)\n"
                "\n"
                "    def snapshot(self):\n"
                "        with self._lock:\n"
                "            return list(self._items)\n"
            ),
        },
    )
    assert run_lint([tmp_path], root=tmp_path) == []


def test_hc009_accepts_lock_held_private_helper(tmp_path):
    # The _locked-helper idiom: every in-class call site holds the lock
    # and nothing outside the class calls it.
    write_tree(
        tmp_path,
        {
            "repro/service/helper.py": (
                "import threading\n"
                "\n"
                "class Queue:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "        self._heap = []\n"
                "\n"
                "    def push(self, x):\n"
                "        with self._lock:\n"
                "            self._push_locked(x)\n"
                "\n"
                "    def push_two(self, a, b):\n"
                "        with self._lock:\n"
                "            self._push_locked(a)\n"
                "            self._push_locked(b)\n"
                "\n"
                "    def _push_locked(self, x):\n"
                "        self._heap.append(x)\n"
            ),
        },
    )
    assert run_lint([tmp_path], root=tmp_path) == []


def test_hc009_rejects_helper_with_an_unlocked_call_site(tmp_path):
    write_tree(
        tmp_path,
        {
            "repro/service/leaky.py": (
                "import threading\n"
                "\n"
                "class Queue:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "        self._heap = []\n"
                "\n"
                "    def push(self, x):\n"
                "        with self._lock:\n"
                "            self._push_locked(x)\n"
                "\n"
                "    def sneak(self, x):\n"
                "        self._push_locked(x)  # no lock held here\n"
                "\n"
                "    def _push_locked(self, x):\n"
                "        self._heap.append(x)\n"
            ),
        },
    )
    diags = run_lint([tmp_path], root=tmp_path)
    assert _rules(diags) == [("repro/service/leaky.py", 16, "HC009")]


def test_hc009_sync_primitives_are_not_guarded_state(tmp_path):
    # Events/semaphores are synchronization objects themselves; touching
    # them outside the lock is the point, not a race.
    write_tree(
        tmp_path,
        {
            "repro/service/ev.py": (
                "import threading\n"
                "\n"
                "class Worker:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "        self._stop = threading.Event()\n"
                "        self._jobs = []\n"
                "\n"
                "    def add(self, j):\n"
                "        with self._lock:\n"
                "            self._jobs.append(j)\n"
                "            self._stop.clear()\n"
                "\n"
                "    def shutdown(self):\n"
                "        self._stop.set()\n"
            ),
        },
    )
    assert run_lint([tmp_path], root=tmp_path) == []


def test_hc009_out_of_scope_packages_are_exempt(tmp_path):
    # Same racy class under repro/rt: HC009's jurisdiction is the
    # threaded layers (service/fleet) only.
    write_tree(
        tmp_path,
        {
            "repro/rt/box.py": (
                "import threading\n"
                "\n"
                "class Box:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "        self._items = []\n"
                "\n"
                "    def add(self, item):\n"
                "        with self._lock:\n"
                "            self._items.append(item)\n"
                "\n"
                "    def size(self):\n"
                "        return len(self._items)\n"
            ),
        },
    )
    assert run_lint([tmp_path], root=tmp_path) == []


# ---------------------------------------------------------------------------
# HC010 — determinism taint
# ---------------------------------------------------------------------------


def test_hc010_cross_module_leak_is_found(tmp_path):
    write_tree(
        tmp_path,
        {
            "repro/fleet/clocks.py": (
                "import time\n"
                "\n"
                "def stamp():\n"
                "    return time.time()\n"
            ),
            "repro/fleet/writer.py": (
                "from repro.fleet.clocks import stamp\n"
                "\n"
                "def record(store):\n"
                "    started = stamp()\n"
                '    store.append({"started": started})\n'
            ),
        },
    )
    diags = run_lint([tmp_path], root=tmp_path)
    assert _rules(diags) == [("repro/fleet/writer.py", 5, "HC010")]
    assert "started" in diags[0].message


def test_hc010_taint_propagates_through_two_call_edges(tmp_path):
    write_tree(
        tmp_path,
        {
            "repro/fleet/deep.py": (
                "import time\n"
                "\n"
                "def raw():\n"
                "    return time.time()\n"
                "\n"
                "def wrapped():\n"
                "    return raw() * 1000.0\n"
                "\n"
                "def record(store):\n"
                '    store.append({"ms": wrapped()})\n'
            ),
        },
    )
    diags = run_lint([tmp_path], root=tmp_path)
    assert _rules(diags) == [("repro/fleet/deep.py", 10, "HC010")]


def test_hc010_clean_counterpart_simulated_time(tmp_path):
    write_tree(
        tmp_path,
        {
            "repro/fleet/ok_writer.py": (
                "def record(store, executor):\n"
                '    store.append({"t": executor.now})\n'
            ),
        },
    )
    assert run_lint([tmp_path], root=tmp_path) == []


def test_hc010_recorder_sinks_are_covered(tmp_path):
    write_tree(
        tmp_path,
        {
            "repro/experiments/ann.py": (
                "import time\n"
                "\n"
                "def note(recorder):\n"
                "    recorder.annotate(when=time.time())\n"
            ),
        },
    )
    diags = run_lint([tmp_path], root=tmp_path)
    assert _rules(diags) == [("repro/experiments/ann.py", 4, "HC010")]


def test_hc010_devtools_owns_the_stopwatch(tmp_path):
    # The bench runner measures wall time and writes it to reports by
    # design; repro/devtools is out of HC010 scope.
    write_tree(
        tmp_path,
        {
            "repro/devtools/runner.py": (
                "import time\n"
                "\n"
                "def measure(store, fn):\n"
                "    t0 = time.perf_counter()\n"
                "    fn()\n"
                '    store.append({"wall_s": time.perf_counter() - t0})\n'
            ),
        },
    )
    assert run_lint([tmp_path], root=tmp_path) == []


def test_hc010_suppression_works_on_the_sink_line(tmp_path):
    write_tree(
        tmp_path,
        {
            "repro/fleet/supp.py": (
                "import time\n"
                "\n"
                "def stamp():\n"
                "    return time.time()\n"
                "\n"
                "def record(store):\n"
                '    store.append({"t": stamp()})  # hclint: disable=HC010\n'
            ),
        },
    )
    assert run_lint([tmp_path], root=tmp_path) == []


# ---------------------------------------------------------------------------
# HC011 — span pairing
# ---------------------------------------------------------------------------


def test_hc011_accepts_the_guarded_executor_idiom(tmp_path):
    write_tree(
        tmp_path,
        {
            "repro/rt/okguard.py": (
                "class Runner:\n"
                "    def run(self):\n"
                "        if self.recorder is not None:\n"
                "            self.recorder.bind_run(self)\n"
                "        result = self.step()\n"
                "        if self.recorder is not None:\n"
                "            self.recorder.finalize_run(result)\n"
                "        return result\n"
            ),
        },
    )
    assert run_lint([tmp_path], root=tmp_path) == []


def test_hc011_accepts_try_finally(tmp_path):
    write_tree(
        tmp_path,
        {
            "repro/rt/okfinally.py": (
                "def run(recorder, fn):\n"
                "    recorder.bind_run(fn)\n"
                "    try:\n"
                "        return fn()\n"
                "    finally:\n"
                "        recorder.finalize_run(fn)\n"
            ),
        },
    )
    assert run_lint([tmp_path], root=tmp_path) == []


def test_hc011_flags_missing_close_at_function_end(tmp_path):
    write_tree(
        tmp_path,
        {
            "repro/rt/noclose.py": (
                "def run(recorder, fn):\n"
                "    recorder.bind_run(fn)\n"
                "    fn()\n"
            ),
        },
    )
    diags = run_lint([tmp_path], root=tmp_path)
    assert _rules(diags) == [("repro/rt/noclose.py", 2, "HC011")]


def test_hc011_flags_close_on_only_one_branch(tmp_path):
    write_tree(
        tmp_path,
        {
            "repro/rt/onebranch.py": (
                "def run(recorder, fn, fast):\n"
                "    recorder.bind_run(fn)\n"
                "    if fast:\n"
                "        recorder.finalize_run(fn)\n"
                "        return 1\n"
                "    return 0\n"
            ),
        },
    )
    diags = run_lint([tmp_path], root=tmp_path)
    assert _rules(diags) == [("repro/rt/onebranch.py", 2, "HC011")]


def test_hc011_different_guards_do_not_discharge(tmp_path):
    # Opening under one condition and closing under a *different* one is
    # exactly the bug the canonical-guard matching must not excuse.
    write_tree(
        tmp_path,
        {
            "repro/rt/mismatch.py": (
                "class Runner:\n"
                "    def run(self):\n"
                "        if self.recorder is not None:\n"
                "            self.recorder.bind_run(self)\n"
                "        result = self.step()\n"
                "        if self.verbose:\n"
                "            self.recorder.finalize_run(result)\n"
                "        return result\n"
            ),
        },
    )
    diags = run_lint([tmp_path], root=tmp_path)
    assert _rules(diags) == [("repro/rt/mismatch.py", 4, "HC011")]


def test_hc011_loop_balanced_open_close_is_clean(tmp_path):
    write_tree(
        tmp_path,
        {
            "repro/rt/loop.py": (
                "def run_all(recorder, jobs):\n"
                "    for job in jobs:\n"
                "        recorder.bind_run(job)\n"
                "        job()\n"
                "        recorder.finalize_run(job)\n"
                "    return len(jobs)\n"
            ),
        },
    )
    assert run_lint([tmp_path], root=tmp_path) == []


def test_hc011_raise_paths_are_not_flagged(tmp_path):
    # Exception exits are the runtime trace checker's department.
    write_tree(
        tmp_path,
        {
            "repro/rt/raising.py": (
                "def run(recorder, fn):\n"
                "    recorder.bind_run(fn)\n"
                "    if fn is None:\n"
                "        raise ValueError(\"no fn\")\n"
                "    out = fn()\n"
                "    recorder.finalize_run(fn)\n"
                "    return out\n"
            ),
        },
    )
    assert run_lint([tmp_path], root=tmp_path) == []
