"""CLI tests for ``hcperf bench run|compare|list``."""

import json

import pytest

from repro.cli import main as hcperf_main
from repro.devtools.bench.cli import main as bench_main


def _run_single(tmp_path, name, out_name="BENCH_a.json"):
    out = tmp_path / out_name
    rc = bench_main(
        ["run", "--suite", "smoke", "--bench", name, "--rounds", "1", "-o", str(out), "-q"]
    )
    assert rc == 0
    return out


class TestBenchRun:
    def test_run_writes_schema_valid_json(self, tmp_path, capsys):
        out = _run_single(tmp_path, "hungarian_40")
        payload = json.loads(out.read_text())
        assert payload["schema_version"] == 1
        assert payload["suite"] == "smoke"
        bench = payload["benches"]["hungarian_40"]
        assert bench["rounds"] == 1
        assert bench["wall_min"] > 0
        assert bench["metrics"]["n"] == 40.0
        assert payload["environment"]["cpu_count"] >= 1
        assert "wrote" in capsys.readouterr().out

    def test_run_default_output_name_uses_tag(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        rc = bench_main(
            ["run", "--suite", "smoke", "--bench", "fusion_40", "--rounds", "1",
             "--tag", "pr", "-q"]
        )
        assert rc == 0
        assert (tmp_path / "BENCH_pr.json").exists()

    def test_unknown_suite_is_usage_error(self, capsys):
        assert bench_main(["run", "--suite", "nope"]) == 2
        assert "unknown suite" in capsys.readouterr().err

    def test_unknown_bench_is_usage_error(self, capsys):
        assert bench_main(["run", "--bench", "nope"]) == 2
        assert "unknown bench" in capsys.readouterr().err


class TestBenchCompare:
    def test_identical_files_pass(self, tmp_path, capsys):
        out = _run_single(tmp_path, "fusion_40")
        rc = bench_main(["compare", str(out), str(out), "--threshold", "0"])
        assert rc == 0
        assert "PASS" in capsys.readouterr().out

    def test_doctored_regression_fails_with_delta_table(self, tmp_path, capsys):
        out = _run_single(tmp_path, "fusion_40")
        doctored = tmp_path / "BENCH_slow.json"
        payload = json.loads(out.read_text())
        for bench in payload["benches"].values():
            bench["wall_times"] = [t * 2 for t in bench["wall_times"]]
        doctored.write_text(json.dumps(payload))
        rc = bench_main(["compare", str(out), str(doctored), "--threshold", "20"])
        assert rc == 1
        captured = capsys.readouterr().out
        assert "REGRESSED" in captured and "FAIL" in captured
        assert "+100.0%" in captured

    def test_missing_file_is_usage_error(self, tmp_path, capsys):
        assert bench_main(["compare", str(tmp_path / "no.json"), str(tmp_path / "no.json")]) == 2
        assert "error:" in capsys.readouterr().err


class TestBenchList:
    def test_list_names_suites_and_benches(self, capsys):
        assert bench_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "Suites: full, smoke" in out
        assert "hungarian_40" in out and "executor_edf" in out


class TestTopLevelWiring:
    def test_hcperf_bench_dispatch(self, capsys):
        assert hcperf_main(["bench", "list"]) == 0
        assert "hungarian_40" in capsys.readouterr().out

    def test_list_output_advertises_bench(self, capsys):
        hcperf_main(["list"])
        assert "Benchmarks:" in capsys.readouterr().out

    def test_bench_requires_subcommand(self):
        with pytest.raises(SystemExit):
            bench_main([])
