"""Fixture trees for the hclint tests.

``violation_tree`` builds a miniature ``repro`` package under ``tmp_path``
with exactly one deliberate violation per shipped rule, at a known
file/line.  Linting with ``root=tmp_path`` makes the diagnostics' paths
relative to the tree, so scoping behaves identically to the real source
tree and the JSON golden test is byte-stable.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Tuple

import pytest

#: relpath -> (source, expected rule id, expected line)
VIOLATION_FIXTURES: Dict[str, Tuple[str, str, int]] = {
    "repro/rt/bad_clock.py": (
        "import time\n"
        "\n"
        "def stamp():\n"
        "    return time.time()\n",
        "HC001",
        4,
    ),
    "repro/workloads/bad_rng.py": (
        "import random\n"
        "\n"
        "def jitter():\n"
        "    return random.random()\n",
        "HC002",
        4,
    ),
    "repro/schedulers/bad_policy.py": (
        "from .base import Scheduler\n"
        "\n"
        "class TypoPolicy(Scheduler):\n"
        "    def rank(self, job, now, view):\n"
        "        return job.priority\n"
        "\n"
        "    def on_windows(self, now, view, window):\n"
        "        return None\n",
        "HC003",
        7,
    ),
    "repro/core/bad_defaults.py": (
        "def collect(samples=[]):\n"
        "    return samples\n",
        "HC004",
        1,
    ),
    "repro/fleet/bad_worker.py": (
        "def run_job(job):\n"
        "    try:\n"
        "        return job()\n"
        "    except:\n"
        "        pass\n",
        "HC005",
        4,
    ),
    "repro/vehicle/bad_eq.py": (
        "def same_instant(deadline, now):\n"
        "    return deadline == now\n",
        "HC006",
        2,
    ),
    "repro/faults/bad_model.py": (
        "import random\n"
        "\n"
        "def spin_up():\n"
        "    return random.Random()\n",
        "HC007",
        4,
    ),
    "repro/service/bad_poll.py": (
        "import time\n"
        "\n"
        "def poll(queue):\n"
        "    while queue.empty():\n"
        "        time.sleep(0.1)\n",
        "HC008",
        5,
    ),
    # HC009 (whole-program): _items is lock-guarded in add() but read bare
    # in size() — the seeded unguarded-access race.
    "repro/service/bad_lock.py": (
        "import threading\n"
        "\n"
        "class SharedBox:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._items = []\n"
        "\n"
        "    def add(self, item):\n"
        "        with self._lock:\n"
        "            self._items.append(item)\n"
        "\n"
        "    def size(self):\n"
        "        return len(self._items)\n",
        "HC009",
        13,
    ),
    # HC010 (whole-program): the wall-clock read is in stamp(), outside any
    # per-file rule's reach here, and leaks into the store via a call edge.
    "repro/fleet/bad_taint.py": (
        "import time\n"
        "\n"
        "\n"
        "def stamp():\n"
        "    return time.time()\n"
        "\n"
        "\n"
        "def record(store):\n"
        '    store.append({"t": stamp()})\n',
        "HC010",
        9,
    ),
    # HC011: an early return escapes between bind_run and finalize_run.
    "repro/obs/bad_span.py": (
        "def run(recorder, ok):\n"
        "    recorder.bind_run(ok)\n"
        "    if not ok:\n"
        "        return None\n"
        "    recorder.finalize_run(ok)\n"
        "    return ok\n",
        "HC011",
        2,
    ),
}


def write_tree(root: Path, files: Dict[str, str]) -> None:
    for relpath, source in files.items():
        path = root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")


@pytest.fixture
def violation_tree(tmp_path: Path) -> Path:
    """A fixture ``repro`` tree with one violation per rule; returns its root."""
    write_tree(
        tmp_path, {rel: src for rel, (src, _, _) in VIOLATION_FIXTURES.items()}
    )
    return tmp_path
