"""Pass-1 project index: summaries, aliasing, call-graph construction.

These tests pin the *resolution rules* of the approximate call graph —
module-local calls, ``import x as y`` attribute chains, ``from m import f
as g`` aliases, ``self.m()`` dispatch, constructor-bound method calls,
and cycles — against fixture mini-packages, because every whole-program
rule inherits exactly these limits.
"""

from __future__ import annotations

import ast

from repro.devtools.lint import ProjectIndex, run_lint, summarize_module
from repro.devtools.lint.engine import default_root, iter_python_files

from .conftest import write_tree


def _index_of(root, files):
    write_tree(root, files)
    summaries = []
    for path in iter_python_files([root]):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        summaries.append(summarize_module(tree, path.relative_to(root).as_posix()))
    return ProjectIndex(summaries)


def test_module_names_derive_from_relpath(tmp_path):
    index = _index_of(
        tmp_path,
        {
            "repro/pkg/__init__.py": "",
            "repro/pkg/mod.py": "def f():\n    pass\n",
        },
    )
    assert set(index.modules) == {"repro.pkg", "repro.pkg.mod"}
    assert "f" in index.modules["repro.pkg.mod"].functions


def test_local_and_imported_calls_resolve(tmp_path):
    index = _index_of(
        tmp_path,
        {
            "repro/a.py": (
                "def helper():\n"
                "    pass\n"
                "\n"
                "def caller():\n"
                "    helper()\n"
            ),
            "repro/b.py": (
                "from repro.a import helper\n"
                "\n"
                "def via_from():\n"
                "    helper()\n"
            ),
            "repro/c.py": (
                "import repro.a as a\n"
                "\n"
                "def via_module():\n"
                "    a.helper()\n"
            ),
        },
    )
    assert index.callees_of("repro.a:caller") == {"repro.a:helper"}
    assert index.callees_of("repro.b:via_from") == {"repro.a:helper"}
    assert index.callees_of("repro.c:via_module") == {"repro.a:helper"}
    assert index.callers_of("repro.a:helper") == {
        "repro.a:caller",
        "repro.b:via_from",
        "repro.c:via_module",
    }


def test_from_import_with_alias_resolves(tmp_path):
    index = _index_of(
        tmp_path,
        {
            "repro/a.py": "def helper():\n    pass\n",
            "repro/b.py": (
                "from repro.a import helper as h\n"
                "\n"
                "def caller():\n"
                "    h()\n"
            ),
        },
    )
    assert index.callees_of("repro.b:caller") == {"repro.a:helper"}


def test_relative_imports_resolve(tmp_path):
    index = _index_of(
        tmp_path,
        {
            "repro/pkg/__init__.py": "",
            "repro/pkg/a.py": "def helper():\n    pass\n",
            "repro/pkg/b.py": (
                "from .a import helper\n"
                "\n"
                "def caller():\n"
                "    helper()\n"
            ),
        },
    )
    assert index.callees_of("repro.pkg.b:caller") == {"repro.pkg.a:helper"}


def test_self_calls_and_ctor_bound_methods_resolve(tmp_path):
    index = _index_of(
        tmp_path,
        {
            "repro/box.py": (
                "class Box:\n"
                "    def __init__(self):\n"
                "        self.items = []\n"
                "\n"
                "    def push(self, x):\n"
                "        self._push(x)\n"
                "\n"
                "    def _push(self, x):\n"
                "        self.items.append(x)\n"
            ),
            "repro/use.py": (
                "from repro.box import Box\n"
                "\n"
                "def build():\n"
                "    b = Box()\n"
                "    b.push(1)\n"
            ),
        },
    )
    assert index.callees_of("repro.box:Box.push") == {"repro.box:Box._push"}
    assert index.callees_of("repro.use:build") == {
        "repro.box:Box.__init__",
        "repro.box:Box.push",
    }


def test_inherited_method_resolves_through_project_base(tmp_path):
    index = _index_of(
        tmp_path,
        {
            "repro/base.py": (
                "class Base:\n"
                "    def shared(self):\n"
                "        pass\n"
            ),
            "repro/child.py": (
                "from repro.base import Base\n"
                "\n"
                "class Child(Base):\n"
                "    def go(self):\n"
                "        self.shared()\n"
            ),
        },
    )
    assert index.callees_of("repro.child:Child.go") == {"repro.base:Base.shared"}


def test_call_cycles_do_not_diverge(tmp_path):
    index = _index_of(
        tmp_path,
        {
            "repro/a.py": (
                "from repro.b import pong\n"
                "\n"
                "def ping(n):\n"
                "    return pong(n - 1)\n"
            ),
            "repro/b.py": (
                "from repro.a import ping\n"
                "\n"
                "def pong(n):\n"
                "    return ping(n - 1)\n"
            ),
        },
    )
    assert index.callees_of("repro.a:ping") == {"repro.b:pong"}
    assert index.callees_of("repro.b:pong") == {"repro.a:ping"}


def test_unresolvable_calls_are_dropped_not_crashed(tmp_path):
    index = _index_of(
        tmp_path,
        {
            "repro/a.py": (
                "import os\n"
                "\n"
                "def f(cb):\n"
                "    os.getpid()\n"
                "    cb()\n"
                "    (lambda: 0)()\n"
            ),
        },
    )
    assert index.callees_of("repro.a:f") == set()


def test_lock_inventory_and_held_tracking(tmp_path):
    index = _index_of(
        tmp_path,
        {
            "repro/locked.py": (
                "import threading\n"
                "\n"
                "class Guarded:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.RLock()\n"
                "        self._stop = threading.Event()\n"
                "        self._data = {}\n"
                "\n"
                "    def put(self, k, v):\n"
                "        with self._lock:\n"
                "            self._data[k] = v\n"
            ),
        },
    )
    cls = index.modules["repro.locked"].classes["Guarded"]
    assert cls.lock_attrs == {"_lock"}
    assert cls.sync_attrs == {"_stop"}
    put_accesses = {
        (a.attr, a.kind, a.held) for a in cls.accesses["put"] if a.attr == "_data"
    }
    assert put_accesses == {("_data", "mutate", ("_lock",))}


def test_real_tree_indexes_without_error():
    # The shipped repro package must summarize and link end to end (this
    # is the same pass run_lint's project stage performs).
    root = default_root()
    summaries = []
    for path in iter_python_files([root / "repro"]):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        summaries.append(summarize_module(tree, path.relative_to(root).as_posix()))
    index = ProjectIndex(summaries)
    graph = index.call_graph()
    assert len(graph) > 100  # every function appears as a caller node
    # Spot-check a known edge: the queue worker calls its own _run_one.
    assert "repro.service.queue:JobQueue._run_one" in graph.get(
        "repro.service.queue:JobQueue._worker", set()
    )


def test_run_lint_report_paths_still_sees_whole_program(tmp_path):
    # --changed semantics: restrict *reporting* to one file while the
    # index still covers the tree; a cross-file taint flow whose sink is
    # in the changed file must be found.
    write_tree(
        tmp_path,
        {
            "repro/fleet/clocks.py": (
                "import time\n"
                "\n"
                "def stamp():\n"
                "    return time.time()\n"
            ),
            "repro/fleet/sinks.py": (
                "from repro.fleet.clocks import stamp\n"
                "\n"
                "def record(store):\n"
                '    store.append({"t": stamp()})\n'
            ),
        },
    )
    diags = run_lint(
        [tmp_path],
        root=tmp_path,
        report_paths=[tmp_path / "repro/fleet/sinks.py"],
    )
    assert [(d.path, d.rule) for d in diags] == [("repro/fleet/sinks.py", "HC010")]
