"""``hcperf lint`` CLI: exit codes, rule listing, and the JSON golden.

The golden below is the byte-exact ``--format json`` output over the
violation fixture tree.  CI annotation tooling consumes this shape; any
change to it (field names, ordering, message text of a shipped rule)
must bump ``JSON_FORMAT_VERSION`` and update the golden deliberately.
"""

from __future__ import annotations

import json

from repro.cli import main as hcperf_main
from repro.devtools.lint.cli import main as lint_main

GOLDEN_JSON = """\
{
  "counts": {
    "error": 10,
    "warning": 1
  },
  "diagnostics": [
    {
      "col": 21,
      "line": 1,
      "message": "mutable default argument in collect(); the default is evaluated once and shared across calls \\u2014 use None and materialize inside",
      "path": "repro/core/bad_defaults.py",
      "rule": "HC004",
      "severity": "error"
    },
    {
      "col": 12,
      "line": 4,
      "message": "unseeded random.Random(); pass the run seed explicitly",
      "path": "repro/faults/bad_model.py",
      "rule": "HC007",
      "severity": "error"
    },
    {
      "col": 5,
      "line": 9,
      "message": "nondeterministic value reaches recording sink 'store.append' in 'record': 'stamp()' returns a value derived from the wall clock or global RNG (results must be a pure function of scenario/scheduler/seed; see docs/static_analysis.md#hc010)",
      "path": "repro/fleet/bad_taint.py",
      "rule": "HC010",
      "severity": "error"
    },
    {
      "col": 5,
      "line": 4,
      "message": "bare except: catches SystemExit/KeyboardInterrupt and hides worker failures; name the exception type",
      "path": "repro/fleet/bad_worker.py",
      "rule": "HC005",
      "severity": "error"
    },
    {
      "col": 5,
      "line": 2,
      "message": "'recorder.bind_run(...)' does not reach 'recorder.finalize_run(...)' on every path out of 'run'; a run could end with its recording unfinalized (see docs/static_analysis.md#hc011)",
      "path": "repro/obs/bad_span.py",
      "rule": "HC011",
      "severity": "error"
    },
    {
      "col": 12,
      "line": 4,
      "message": "wall-clock read time.time; simulation results must be a pure function of the run seed (inject a timer from repro.devtools.timing if this is profiling instrumentation)",
      "path": "repro/rt/bad_clock.py",
      "rule": "HC001",
      "severity": "error"
    },
    {
      "col": 5,
      "line": 7,
      "message": "TypoPolicy.on_windows looks like an executor hook but is not one (known hooks: desired_rates, on_dispatch_round, on_job_complete, on_job_miss, on_window, prepare, rank); it would never be called",
      "path": "repro/schedulers/bad_policy.py",
      "rule": "HC003",
      "severity": "error"
    },
    {
      "col": 20,
      "line": 13,
      "message": "'SharedBox._items' is guarded by 'self._lock' elsewhere but read in 'size' without holding it; thread-shared state must stay under its lock (see docs/static_analysis.md#hc009)",
      "path": "repro/service/bad_lock.py",
      "rule": "HC009",
      "severity": "error"
    },
    {
      "col": 9,
      "line": 5,
      "message": "time.sleep inside a loop is an uninterruptible polling idiom; wait on a shutdown Event (event.wait(timeout)) or a Condition instead",
      "path": "repro/service/bad_poll.py",
      "rule": "HC008",
      "severity": "error"
    },
    {
      "col": 12,
      "line": 2,
      "message": "exact float equality on time quantity ('deadline', 'now'); use repro.rt.timeutil.times_close(a, b) or is_zero_time(x) to make the tolerance explicit",
      "path": "repro/vehicle/bad_eq.py",
      "rule": "HC006",
      "severity": "warning"
    },
    {
      "col": 12,
      "line": 4,
      "message": "process-global RNG call random.random; draw from an explicitly seeded random.Random instead",
      "path": "repro/workloads/bad_rng.py",
      "rule": "HC002",
      "severity": "error"
    }
  ],
  "version": 1
}
"""

def test_json_golden_output(violation_tree, capsys):
    exit_code = lint_main(
        ["--root", str(violation_tree), "--format", "json", str(violation_tree)]
    )
    assert exit_code == 1
    assert capsys.readouterr().out == GOLDEN_JSON
    # and it really is valid, versioned JSON
    payload = json.loads(GOLDEN_JSON)
    assert payload["version"] == 1
    assert payload["counts"] == {"error": 10, "warning": 1}


def test_clean_tree_exits_zero(tmp_path, capsys):
    (tmp_path / "repro").mkdir()
    (tmp_path / "repro" / "clean.py").write_text(
        "def double(x):\n    return 2 * x\n", encoding="utf-8"
    )
    exit_code = lint_main(["--root", str(tmp_path), str(tmp_path)])
    assert exit_code == 0
    assert "clean" in capsys.readouterr().out


def test_unknown_rule_is_a_usage_error(tmp_path, capsys):
    exit_code = lint_main(["--rule", "HC999", str(tmp_path)])
    assert exit_code == 2
    assert "unknown rule" in capsys.readouterr().err


def test_rule_filter_and_severity_filter(violation_tree, capsys):
    exit_code = lint_main(
        ["--root", str(violation_tree), "--rule", "HC001", str(violation_tree)]
    )
    out = capsys.readouterr().out
    assert exit_code == 1
    assert "HC001" in out and "HC002" not in out

    exit_code = lint_main(
        [
            "--root",
            str(violation_tree),
            "--severity",
            "error",
            "--rule",
            "HC006",
            str(violation_tree),
        ]
    )
    assert exit_code == 0  # HC006 is warning-severity, filtered out


def test_list_rules_names_every_rule(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in (
        "HC001",
        "HC002",
        "HC003",
        "HC004",
        "HC005",
        "HC006",
        "HC007",
        "HC008",
        "HC009",
        "HC010",
        "HC011",
    ):
        assert rule_id in out


def test_hcperf_lint_subcommand_is_wired(violation_tree, capsys):
    exit_code = hcperf_main(
        ["lint", "--root", str(violation_tree), str(violation_tree)]
    )
    assert exit_code == 1
    assert "HC001" in capsys.readouterr().out
