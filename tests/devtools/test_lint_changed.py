"""``hcperf lint --changed``: git-aware reporting over a full index."""

from __future__ import annotations

import subprocess

import pytest

from repro.devtools.lint.cli import main as lint_main

from .conftest import VIOLATION_FIXTURES, write_tree


def _git(tmp_path, *argv):
    subprocess.run(
        ["git", *argv],
        cwd=tmp_path,
        check=True,
        capture_output=True,
        env={
            "GIT_AUTHOR_NAME": "t",
            "GIT_AUTHOR_EMAIL": "t@example.invalid",
            "GIT_COMMITTER_NAME": "t",
            "GIT_COMMITTER_EMAIL": "t@example.invalid",
            "HOME": str(tmp_path),
            "PATH": "/usr/bin:/bin:/usr/local/bin",
        },
    )


@pytest.fixture
def git_tree(tmp_path, monkeypatch):
    write_tree(
        tmp_path, {rel: src for rel, (src, _, _) in VIOLATION_FIXTURES.items()}
    )
    _git(tmp_path, "init", "-q")
    _git(tmp_path, "add", "-A")
    _git(tmp_path, "commit", "-q", "-m", "seed")
    monkeypatch.chdir(tmp_path)
    return tmp_path


def test_changed_reports_only_touched_files(git_tree, capsys):
    # Touch one already-broken file; only its findings should be reported,
    # even though the whole committed tree is full of violations.
    target = git_tree / "repro/rt/bad_clock.py"
    target.write_text(target.read_text(encoding="utf-8") + "\n# touched\n")
    exit_code = lint_main(
        ["--root", str(git_tree), "--no-cache", str(git_tree), "--changed"]
    )
    out = capsys.readouterr().out
    assert exit_code == 1
    assert "bad_clock.py" in out
    assert "bad_rng.py" not in out
    assert "1 error(s)" in out


def test_changed_sees_untracked_files(git_tree, capsys):
    write_tree(
        git_tree,
        {"repro/rt/fresh.py": "import time\n\ndef t():\n    return time.time()\n"},
    )
    exit_code = lint_main(
        ["--root", str(git_tree), "--no-cache", str(git_tree), "--changed"]
    )
    out = capsys.readouterr().out
    assert exit_code == 1
    assert "fresh.py" in out and "bad_clock.py" not in out


def test_changed_clean_when_nothing_touched(git_tree, capsys):
    exit_code = lint_main(
        ["--root", str(git_tree), "--no-cache", str(git_tree), "--changed"]
    )
    assert exit_code == 0
    assert "no changed python files" in capsys.readouterr().out


def test_changed_whole_program_rules_see_unchanged_files(git_tree, capsys):
    # The cross-file HC010 pair: taint source committed and untouched, a
    # *new* sink file calls it.  --changed must still resolve the call
    # edge into the unchanged file.
    write_tree(
        git_tree,
        {
            "repro/fleet/new_sink.py": (
                "from repro.fleet.bad_taint import stamp\n"
                "\n"
                "def log_to(store):\n"
                '    store.append({"at": stamp()})\n'
            )
        },
    )
    exit_code = lint_main(
        ["--root", str(git_tree), "--no-cache", str(git_tree), "--changed"]
    )
    out = capsys.readouterr().out
    assert exit_code == 1
    assert "new_sink.py" in out and "HC010" in out
    # The pre-existing finding inside bad_taint.py itself is not re-reported.
    assert "bad_taint.py:9" not in out


def test_changed_outside_git_is_usage_error(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    monkeypatch.setenv("GIT_CEILING_DIRECTORIES", str(tmp_path.parent))
    exit_code = lint_main(["--root", str(tmp_path), str(tmp_path), "--changed"])
    assert exit_code == 2
    assert "git" in capsys.readouterr().err
