"""Engine-level behavior: suppressions, severity filtering, rule selection,
parse errors, and the registry."""

from __future__ import annotations

import pytest

from repro.devtools.lint import (
    PARSE_ERROR_RULE,
    Severity,
    get_rules,
    lint_file,
    rule_ids,
    run_lint,
)
from repro.devtools.lint.engine import _REGISTRY, register

from .conftest import VIOLATION_FIXTURES, write_tree


def test_shipped_rule_ids():
    assert rule_ids() == [
        "HC001",
        "HC002",
        "HC003",
        "HC004",
        "HC005",
        "HC006",
        "HC007",
        "HC008",
        "HC009",
        "HC010",
        "HC011",
    ]


def test_line_suppression_silences_only_that_rule(tmp_path):
    write_tree(
        tmp_path,
        {
            "repro/rt/suppressed.py": (
                "import time\n"
                "\n"
                "def stamp():\n"
                "    return time.time()  # hclint: disable=HC001\n"
            )
        },
    )
    assert run_lint([tmp_path], root=tmp_path) == []


def test_line_suppression_is_line_scoped(tmp_path):
    write_tree(
        tmp_path,
        {
            "repro/rt/partial.py": (
                "import time\n"
                "\n"
                "def stamp():\n"
                "    a = time.time()  # hclint: disable=HC001\n"
                "    return a + time.time()\n"
            )
        },
    )
    diags = run_lint([tmp_path], root=tmp_path)
    assert [(d.rule, d.line) for d in diags] == [("HC001", 5)]


def test_suppressing_an_unrelated_rule_does_not_silence(tmp_path):
    write_tree(
        tmp_path,
        {
            "repro/rt/wrong_rule.py": (
                "import time\n"
                "\n"
                "def stamp():\n"
                "    return time.time()  # hclint: disable=HC006\n"
            )
        },
    )
    diags = run_lint([tmp_path], root=tmp_path)
    assert [d.rule for d in diags] == ["HC001"]


def test_file_wide_suppression_and_disable_all(tmp_path):
    write_tree(
        tmp_path,
        {
            "repro/rt/filewide.py": (
                '"""Fixture."""  # hclint: disable-file=HC001\n'
                "import time\n"
                "\n"
                "def stamp():\n"
                "    return time.time()\n"
            ),
            "repro/rt/all_off.py": (
                "import time\n"
                "\n"
                "def stamp():\n"
                "    return time.time()  # hclint: disable=all\n"
            ),
        },
    )
    assert run_lint([tmp_path], root=tmp_path) == []


def test_severity_filter_drops_warnings(violation_tree):
    errors = run_lint(
        [violation_tree], root=violation_tree, min_severity=Severity.ERROR
    )
    # HC006 is the only warning-severity rule in the fixture tree.
    assert sorted(d.rule for d in errors) == sorted(
        rule
        for _, rule, _ in VIOLATION_FIXTURES.values()
        if rule != "HC006"
    )


def test_rule_selection_restricts_and_rejects_unknown(violation_tree):
    only = run_lint([violation_tree], root=violation_tree, rules=["hc001"])
    assert [d.rule for d in only] == ["HC001"]
    with pytest.raises(ValueError, match="HC999"):
        run_lint([violation_tree], root=violation_tree, rules=["HC999"])


def test_syntax_error_yields_hc000(tmp_path):
    write_tree(tmp_path, {"repro/rt/broken.py": "def f(:\n"})
    diags = lint_file(tmp_path / "repro/rt/broken.py", root=tmp_path)
    assert [d.rule for d in diags] == [PARSE_ERROR_RULE]
    assert "syntax error" in diags[0].message


def test_diagnostics_are_sorted_and_stable(violation_tree):
    diags = run_lint([violation_tree], root=violation_tree)
    assert diags == sorted(diags)
    assert diags == run_lint([violation_tree], root=violation_tree)


def test_register_rejects_duplicate_rule_ids():
    get_rules()  # ensure built-ins are registered

    with pytest.raises(ValueError, match="duplicate rule id"):

        @register
        class Clash:  # noqa — minimal stand-in; only .id is consulted
            id = "HC001"

            def __init__(self) -> None:
                pass

    assert "HC001" in _REGISTRY  # original registration untouched


def test_files_outside_a_repro_package_only_get_unscoped_rules(tmp_path):
    write_tree(
        tmp_path,
        {
            "scripts/helper.py": (
                "import time\n"
                "\n"
                "def f(xs=[]):\n"
                "    return time.time()\n"
            )
        },
    )
    diags = run_lint([tmp_path], root=tmp_path)
    # HC004 applies everywhere; HC001 only under a repro package.
    assert [d.rule for d in diags] == ["HC004"]
