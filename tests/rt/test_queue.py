"""Unit tests for the ready queue."""

import pytest

from repro.rt import ConstantExecTime, Job, ReadyQueue, TaskSpec


def job(name="t", priority=1, release=0.0, exec_time=0.01, deadline=0.1, binding=None):
    spec = TaskSpec(
        name=name,
        priority=priority,
        relative_deadline=deadline,
        exec_model=ConstantExecTime(exec_time),
        processor_binding=binding,
    )
    return Job(task=spec, release_time=release, exec_time=exec_time)


class TestBasicOps:
    def test_push_len_iter(self):
        q = ReadyQueue()
        assert not q and len(q) == 0
        a, b = job("a"), job("b")
        q.push(a)
        q.push(b)
        assert len(q) == 2 and list(q) == [a, b]
        assert a in q

    def test_remove(self):
        q = ReadyQueue()
        a = job("a")
        q.push(a)
        q.remove(a)
        assert a not in q and len(q) == 0

    def test_jobs_snapshot_is_copy(self):
        q = ReadyQueue()
        q.push(job("a"))
        snapshot = q.jobs()
        snapshot.clear()
        assert len(q) == 1

    def test_clear_returns_jobs(self):
        q = ReadyQueue()
        a, b = job("a"), job("b")
        q.push(a)
        q.push(b)
        removed = q.clear()
        assert removed == [a, b] and len(q) == 0

    def test_total_exec_time(self):
        q = ReadyQueue()
        q.push(job("a", exec_time=0.01))
        q.push(job("b", exec_time=0.02))
        assert q.total_exec_time() == pytest.approx(0.03)


class TestPopBest:
    def test_pop_best_minimizes_key(self):
        q = ReadyQueue()
        lo = job("lo", priority=1)
        hi = job("hi", priority=5)
        q.push(hi)
        q.push(lo)
        picked = q.pop_best(key=lambda j: j.task.priority)
        assert picked is lo
        assert hi in q

    def test_pop_best_tie_breaks_by_insertion(self):
        q = ReadyQueue()
        first = job("first", priority=2)
        second = job("second", priority=2)
        q.push(first)
        q.push(second)
        assert q.pop_best(key=lambda j: j.task.priority) is first

    def test_pop_best_empty_returns_none(self):
        assert ReadyQueue().pop_best(key=lambda j: 0.0) is None

    def test_pop_best_respects_binding(self):
        q = ReadyQueue()
        bound = job("bound", priority=1, binding=0)
        free = job("free", priority=5)
        q.push(bound)
        q.push(free)
        # Processor 1 cannot run the bound job even though it ranks better.
        picked = q.pop_best(key=lambda j: j.task.priority, processor=1)
        assert picked is free
        # Processor 0 may run it.
        picked0 = q.pop_best(key=lambda j: j.task.priority, processor=0)
        assert picked0 is bound

    def test_pop_best_no_eligible_returns_none(self):
        q = ReadyQueue()
        q.push(job("bound", binding=0))
        assert q.pop_best(key=lambda j: 0.0, processor=3) is None


class TestEligible:
    def test_eligible_includes_unbound(self):
        q = ReadyQueue()
        a = job("a")
        b = job("b", binding=2)
        q.push(a)
        q.push(b)
        assert q.eligible(2) == [a, b]
        assert q.eligible(0) == [a]


class TestDropExpired:
    def test_drop_expired_removes_and_returns(self):
        q = ReadyQueue()
        fresh = job("fresh", release=1.0, deadline=1.0)
        stale = job("stale", release=0.0, deadline=0.05)
        q.push(fresh)
        q.push(stale)
        dropped = q.drop_expired(now=0.5)
        assert dropped == [stale]
        assert list(q) == [fresh]

    def test_drop_expired_boundary_is_inclusive(self):
        q = ReadyQueue()
        edge = job("edge", release=0.0, deadline=0.5)
        q.push(edge)
        assert q.drop_expired(now=0.5) == [edge]

    def test_drop_expired_none(self):
        q = ReadyQueue()
        q.push(job("a", release=0.0, deadline=10.0))
        assert q.drop_expired(now=0.1) == []
