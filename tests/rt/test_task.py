"""Unit tests for the task/job model."""


import pytest

from repro.rt import ConstantExecTime, Criticality, Job, JobState, TaskSpec


def make_spec(**kwargs):
    defaults = dict(
        name="t",
        priority=1,
        relative_deadline=0.1,
        exec_model=ConstantExecTime(0.01),
    )
    defaults.update(kwargs)
    return TaskSpec(**defaults)


class TestTaskSpec:
    def test_basic_construction(self):
        spec = make_spec(name="camera", priority=5)
        assert spec.name == "camera"
        assert spec.priority == 5
        assert spec.criticality is Criticality.LOW

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            make_spec(name="")

    def test_nonpositive_deadline_rejected(self):
        with pytest.raises(ValueError, match="relative_deadline"):
            make_spec(relative_deadline=0.0)
        with pytest.raises(ValueError, match="relative_deadline"):
            make_spec(relative_deadline=-1.0)

    def test_nonpositive_rate_rejected(self):
        with pytest.raises(ValueError, match="rate"):
            make_spec(rate=0.0)

    def test_invalid_rate_range_rejected(self):
        with pytest.raises(ValueError, match="rate_range"):
            make_spec(rate=10.0, rate_range=(0.0, 20.0))
        with pytest.raises(ValueError, match="rate_range"):
            make_spec(rate=10.0, rate_range=(20.0, 10.0))

    def test_rate_outside_range_rejected(self):
        with pytest.raises(ValueError, match="outside range"):
            make_spec(rate=100.0, rate_range=(5.0, 50.0))

    def test_period_from_rate(self):
        assert make_spec(rate=20.0).period == pytest.approx(0.05)

    def test_period_none_without_rate(self):
        assert make_spec().period is None

    def test_equality_and_hash_by_name(self):
        a = make_spec(name="x", priority=1)
        b = make_spec(name="x", priority=9)
        assert a == b
        assert hash(a) == hash(b)
        assert a != make_spec(name="y")

    def test_equality_with_non_spec(self):
        assert make_spec() != 42


class TestJob:
    def test_absolute_deadline(self):
        job = Job(task=make_spec(relative_deadline=0.2), release_time=1.0, exec_time=0.01)
        assert job.absolute_deadline == pytest.approx(1.2)

    def test_default_provenance_is_own_release(self):
        job = Job(task=make_spec(name="src"), release_time=3.0, exec_time=0.01)
        assert job.provenance == {"src": 3.0}
        assert job.sense_time == pytest.approx(3.0)

    def test_sense_time_is_oldest_provenance(self):
        job = Job(
            task=make_spec(),
            release_time=5.0,
            exec_time=0.01,
            provenance={"camera": 4.8, "lidar": 4.9},
        )
        assert job.sense_time == pytest.approx(4.8)

    def test_negative_exec_time_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            Job(task=make_spec(), release_time=0.0, exec_time=-0.1)

    def test_latest_start_uses_own_exec_time(self):
        job = Job(task=make_spec(relative_deadline=0.1), release_time=0.0, exec_time=0.03)
        assert job.latest_start() == pytest.approx(0.07)

    def test_latest_start_with_estimate(self):
        job = Job(task=make_spec(relative_deadline=0.1), release_time=0.0, exec_time=0.03)
        assert job.latest_start(0.05) == pytest.approx(0.05)

    def test_is_expired(self):
        job = Job(task=make_spec(relative_deadline=0.1), release_time=0.0, exec_time=0.01)
        assert not job.is_expired(0.05)
        assert job.is_expired(0.1)
        assert job.is_expired(0.2)

    def test_response_time_none_until_finished(self):
        job = Job(task=make_spec(), release_time=1.0, exec_time=0.01)
        assert job.response_time is None
        job.finish_time = 1.5
        assert job.response_time == pytest.approx(0.5)

    def test_job_ids_unique_and_hashable(self):
        a = Job(task=make_spec(), release_time=0.0, exec_time=0.01)
        b = Job(task=make_spec(), release_time=0.0, exec_time=0.01)
        assert a != b
        assert len({a, b}) == 2
        assert a == a

    def test_equality_with_non_job(self):
        job = Job(task=make_spec(), release_time=0.0, exec_time=0.01)
        assert job != "job"

    def test_initial_state_ready(self):
        job = Job(task=make_spec(), release_time=0.0, exec_time=0.01)
        assert job.state is JobState.READY
