"""Property-based tests of executor invariants.

Hypothesis drives random small workloads through the engine; the invariants
must hold for every one of them:

* accounting closes: released = completed + missed + still-in-flight;
* the platform never executes two jobs concurrently on one processor;
* every job reported completed finished by its absolute deadline;
* every late-finishing job is reported missed;
* the miss ratio is in [0, 1] and utilization in [0, 1].

The typed-platform section pins the new dispatch semantics: jobs never run
outside their task's affinity, a speedup-1.0 typed profile reproduces the
scalar platform exactly, and the two activation modes obey their token
contracts (all-inputs conserves tokens; newest-only fires once per fresh
input and never reads a stale edge twice as a trigger).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.recorder import Recorder
from repro.rt import (
    ConstantExecTime,
    ProcessorProfile,
    RTExecutor,
    SimConfig,
    TaskGraph,
    TaskSpec,
    TraceRecorder,
    UniformExecTime,
)
from repro.schedulers import EDFScheduler, HCPerfScheduler, HPFScheduler


@st.composite
def workloads(draw):
    """A random small chain/diamond workload plus platform parameters."""
    rate = draw(st.sampled_from([10.0, 20.0, 40.0]))
    exec_scale = draw(st.floats(min_value=0.2, max_value=3.0))
    n_proc = draw(st.integers(min_value=1, max_value=3))
    seed = draw(st.integers(min_value=0, max_value=999))
    fan_out = draw(st.booleans())
    scheduler = draw(st.sampled_from(["EDF", "HPF", "HCPerf"]))
    return rate, exec_scale, n_proc, seed, fan_out, scheduler


def build(rate, exec_scale, fan_out):
    g = TaskGraph()
    c = 0.004 * exec_scale
    g.add_task(TaskSpec("src", priority=4, relative_deadline=0.08,
                        exec_model=UniformExecTime(0.5 * c, c),
                        rate=rate, rate_range=(5.0, 50.0)))
    if fan_out:
        for name in ("left", "right"):
            g.add_task(TaskSpec(name, priority=3, relative_deadline=0.08,
                                exec_model=ConstantExecTime(c)))
            g.add_edge("src", name)
        g.add_task(TaskSpec("sink", priority=1, relative_deadline=0.08,
                            exec_model=ConstantExecTime(0.5 * c)))
        g.add_edge("left", "sink")
        g.add_edge("right", "sink")
    else:
        g.add_task(TaskSpec("mid", priority=2, relative_deadline=0.08,
                            exec_model=ConstantExecTime(c)))
        g.add_task(TaskSpec("sink", priority=1, relative_deadline=0.08,
                            exec_model=ConstantExecTime(0.5 * c)))
        g.add_edge("src", "mid")
        g.add_edge("mid", "sink")
    g.validate()
    return g


SCHEDULERS = {"EDF": EDFScheduler, "HPF": HPFScheduler, "HCPerf": HCPerfScheduler}


@given(params=workloads())
@settings(max_examples=30, deadline=None)
def test_engine_invariants(params):
    rate, exec_scale, n_proc, seed, fan_out, scheduler = params
    graph = build(rate, exec_scale, fan_out)
    executor = RTExecutor(
        graph,
        SCHEDULERS[scheduler](),
        SimConfig(n_processors=n_proc, horizon=1.5, coordination_period=0.25,
                  seed=seed),
    )
    executor.tracer = TraceRecorder()
    metrics = executor.run()

    # --- accounting closes ------------------------------------------------
    for name, stats in metrics.per_task.items():
        in_queue = sum(1 for j in executor.ready if j.task.name == name)
        running = sum(
            1 for p in executor.processors
            if p.job is not None and p.job.task.name == name
        )
        assert stats.released == stats.completed + stats.missed + in_queue + running, name
        assert stats.dropped <= stats.missed

    # --- non-preemptive, no overlap ----------------------------------------
    assert executor.tracer.verify_non_overlap() == []

    # --- deadline bookkeeping ----------------------------------------------
    for entry in executor.tracer.entries:
        if entry.completed:
            assert entry.finish <= entry.deadline + 1e-12
        else:
            assert entry.finish > entry.deadline - 1e-12
        assert entry.start >= entry.release - 1e-12
        assert entry.finish >= entry.start

    # --- bounded ratios ----------------------------------------------------
    assert 0.0 <= metrics.overall_miss_ratio <= 1.0
    assert 0.0 <= executor.utilization() <= 1.0 + 1e-9
    for w in metrics.windows:
        assert 0.0 <= w.miss_ratio <= 1.0


@given(
    seed=st.integers(min_value=0, max_value=500),
    n_proc=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=15, deadline=None)
def test_rate_bounds_always_respected(seed, n_proc):
    """Whatever HCPerf's adapter does, rates stay inside the allowable range."""
    graph = build(rate=20.0, exec_scale=2.0, fan_out=True)
    executor = RTExecutor(
        graph,
        HCPerfScheduler(),
        SimConfig(n_processors=n_proc, horizon=3.0, coordination_period=0.25,
                  seed=seed),
    )
    observed = []
    executor.add_periodic("probe", 0.25, lambda t: observed.append(executor.get_rate("src")))
    executor.run()
    lo, hi = graph.task("src").rate_range
    assert all(lo <= r <= hi for r in observed)


# ---------------------------------------------------------------------------
# Typed platforms and activation modes
# ---------------------------------------------------------------------------

def build_typed(rate, exec_scale, accel_affine, activation):
    """Diamond graph for a 2xCPU+1xGPU platform.

    ``accel_affine`` pins the two middle stages to the GPU (where they run
    2x faster); the sink's activation mode is selectable.
    """
    g = build(rate, exec_scale, fan_out=True)
    if accel_affine:
        for name in ("left", "right"):
            g.task(name).affinity = frozenset({"GPU"})
            g.task(name).speedup = {"GPU": 2.0}
    g.task("sink").activation = activation
    return g


@st.composite
def typed_workloads(draw):
    rate = draw(st.sampled_from([10.0, 20.0, 40.0]))
    exec_scale = draw(st.floats(min_value=0.2, max_value=3.0))
    seed = draw(st.integers(min_value=0, max_value=999))
    accel_affine = draw(st.booleans())
    activation = draw(st.sampled_from(["all-inputs", "newest-only"]))
    scheduler = draw(st.sampled_from(["EDF", "HPF", "HCPerf"]))
    return rate, exec_scale, seed, accel_affine, activation, scheduler


def run_typed(params, profile="2xCPU+1xGPU@2"):
    rate, exec_scale, seed, accel_affine, activation, scheduler = params
    graph = build_typed(rate, exec_scale, accel_affine, activation)
    executor = RTExecutor(
        graph,
        SCHEDULERS[scheduler](),
        SimConfig(processor_profile=profile, horizon=1.5,
                  coordination_period=0.25, seed=seed),
    )
    executor.recorder = Recorder()
    metrics = executor.run()
    return graph, executor, metrics


@given(params=typed_workloads())
@settings(max_examples=25, deadline=None)
def test_jobs_never_run_outside_affinity(params):
    graph, executor, _ = run_typed(params)
    unit_of = {i: u.type for i, u in enumerate(executor.profile.units)}
    for span in executor.recorder.spans():
        affinity = graph.task(span.task).affinity
        assert span.unit == unit_of[span.processor]
        if affinity is not None:
            assert span.unit in affinity, (
                f"{span.task} ran on {span.unit}, affinity {sorted(affinity)}"
            )


@given(params=typed_workloads())
@settings(max_examples=25, deadline=None)
def test_activation_token_contracts(params):
    """all-inputs: one firing consumes one token per edge, so the sink can
    never fire more often than its slowest input delivers.  newest-only:
    every fresh input fires the sink exactly once."""
    _, executor, metrics = run_typed(params)
    activation = params[4]
    sink = metrics.per_task["sink"]
    deliveries = metrics.per_task["left"].completed + metrics.per_task["right"].completed
    if activation == "newest-only":
        assert sink.released == deliveries
    else:
        assert sink.released <= min(
            metrics.per_task["left"].completed, metrics.per_task["right"].completed
        )


@given(params=typed_workloads())
@settings(max_examples=15, deadline=None)
def test_typed_engine_invariants_still_hold(params):
    """The core accounting/overlap/deadline invariants survive typed
    dispatch and both activation modes."""
    graph, executor, metrics = run_typed(params)
    for name, stats in metrics.per_task.items():
        in_queue = sum(1 for j in executor.ready if j.task.name == name)
        running = sum(
            1 for p in executor.processors
            if p.job is not None and p.job.task.name == name
        )
        assert stats.released == stats.completed + stats.missed + in_queue + running, name
    assert 0.0 <= metrics.overall_miss_ratio <= 1.0


@given(
    seed=st.integers(min_value=0, max_value=500),
    n_proc=st.integers(min_value=1, max_value=3),
    scheduler=st.sampled_from(["EDF", "HPF", "HCPerf"]),
)
@settings(max_examples=20, deadline=None)
def test_speedup_one_profile_reproduces_scalar_platform(seed, n_proc, scheduler):
    """A typed profile whose units all have speedup 1.0 and whose tasks have
    no affinity restrictions is observationally identical to the plain
    ``n_processors`` platform — even when the unit *types* differ."""
    def run(config):
        graph = build(rate=20.0, exec_scale=1.5, fan_out=True)
        ex = RTExecutor(graph, SCHEDULERS[scheduler](), config)
        ex.tracer = TraceRecorder()
        metrics = ex.run()
        return ex.tracer.entries, metrics.overall_miss_ratio

    scalar = run(SimConfig(n_processors=n_proc, horizon=1.5,
                           coordination_period=0.25, seed=seed))
    # exotic type names, but speedup 1.0 everywhere and no affinities
    units = tuple(
        ProcessorProfile.parse("NPU").units[0] if i % 2 else
        ProcessorProfile.parse("CPU").units[0]
        for i in range(n_proc)
    )
    typed = run(SimConfig(processor_profile=ProcessorProfile(units=units),
                          horizon=1.5, coordination_period=0.25, seed=seed))
    assert typed == scalar


def test_newest_only_never_reuses_a_trigger_and_retains_snapshots():
    """Deterministic two-source fusion: the fast source fires the sink on
    every completion, each firing consumes exactly the one fresh token, and
    the slow source's last output is retained (not cleared) between its
    deliveries."""
    g = TaskGraph()
    g.add_task(TaskSpec("fast", priority=2, relative_deadline=0.1,
                        exec_model=ConstantExecTime(0.001),
                        rate=40.0, rate_range=(10.0, 50.0)))
    g.add_task(TaskSpec("slow", priority=2, relative_deadline=0.2,
                        exec_model=ConstantExecTime(0.001),
                        rate=10.0, rate_range=(5.0, 20.0)))
    g.add_task(TaskSpec("fuse", priority=1, relative_deadline=0.2,
                        exec_model=ConstantExecTime(0.001),
                        activation="newest-only"))
    g.add_edge("fast", "fuse")
    g.add_edge("slow", "fuse")
    g.validate()

    executor = RTExecutor(
        g, EDFScheduler(),
        SimConfig(n_processors=2, horizon=1.0, coordination_period=0.5, seed=0),
    )
    provenances = []
    original_release = executor._release_job

    def spy(spec, provenance):
        if spec.name == "fuse":
            provenances.append(dict(provenance or {}))
        return original_release(spec, provenance)

    executor._release_job = spy
    metrics = executor.run()

    deliveries = metrics.per_task["fast"].completed + metrics.per_task["slow"].completed
    assert metrics.per_task["fuse"].released == deliveries
    assert len(provenances) == deliveries

    # Until the slow source first delivers, firings carry only the fast
    # token; afterwards every firing retains the slow snapshot.
    seen_slow = False
    last_slow = None
    for prov in provenances:
        assert prov, "newest-only firing with no input token"
        if "slow" in prov:
            seen_slow = True
            if last_slow is not None:
                assert prov["slow"] >= last_slow  # snapshots only move forward
            last_slow = prov["slow"]
        else:
            assert not seen_slow, "slow snapshot vanished between firings"
    assert seen_slow, "slow source never contributed a retained token"
