"""Property-based tests of executor invariants.

Hypothesis drives random small workloads through the engine; the invariants
must hold for every one of them:

* accounting closes: released = completed + missed + still-in-flight;
* the platform never executes two jobs concurrently on one processor;
* every job reported completed finished by its absolute deadline;
* every late-finishing job is reported missed;
* the miss ratio is in [0, 1] and utilization in [0, 1].
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rt import (
    ConstantExecTime,
    RTExecutor,
    SimConfig,
    TaskGraph,
    TaskSpec,
    TraceRecorder,
    UniformExecTime,
)
from repro.schedulers import EDFScheduler, HCPerfScheduler, HPFScheduler


@st.composite
def workloads(draw):
    """A random small chain/diamond workload plus platform parameters."""
    rate = draw(st.sampled_from([10.0, 20.0, 40.0]))
    exec_scale = draw(st.floats(min_value=0.2, max_value=3.0))
    n_proc = draw(st.integers(min_value=1, max_value=3))
    seed = draw(st.integers(min_value=0, max_value=999))
    fan_out = draw(st.booleans())
    scheduler = draw(st.sampled_from(["EDF", "HPF", "HCPerf"]))
    return rate, exec_scale, n_proc, seed, fan_out, scheduler


def build(rate, exec_scale, fan_out):
    g = TaskGraph()
    c = 0.004 * exec_scale
    g.add_task(TaskSpec("src", priority=4, relative_deadline=0.08,
                        exec_model=UniformExecTime(0.5 * c, c),
                        rate=rate, rate_range=(5.0, 50.0)))
    if fan_out:
        for name in ("left", "right"):
            g.add_task(TaskSpec(name, priority=3, relative_deadline=0.08,
                                exec_model=ConstantExecTime(c)))
            g.add_edge("src", name)
        g.add_task(TaskSpec("sink", priority=1, relative_deadline=0.08,
                            exec_model=ConstantExecTime(0.5 * c)))
        g.add_edge("left", "sink")
        g.add_edge("right", "sink")
    else:
        g.add_task(TaskSpec("mid", priority=2, relative_deadline=0.08,
                            exec_model=ConstantExecTime(c)))
        g.add_task(TaskSpec("sink", priority=1, relative_deadline=0.08,
                            exec_model=ConstantExecTime(0.5 * c)))
        g.add_edge("src", "mid")
        g.add_edge("mid", "sink")
    g.validate()
    return g


SCHEDULERS = {"EDF": EDFScheduler, "HPF": HPFScheduler, "HCPerf": HCPerfScheduler}


@given(params=workloads())
@settings(max_examples=30, deadline=None)
def test_engine_invariants(params):
    rate, exec_scale, n_proc, seed, fan_out, scheduler = params
    graph = build(rate, exec_scale, fan_out)
    executor = RTExecutor(
        graph,
        SCHEDULERS[scheduler](),
        SimConfig(n_processors=n_proc, horizon=1.5, coordination_period=0.25,
                  seed=seed),
    )
    executor.tracer = TraceRecorder()
    metrics = executor.run()

    # --- accounting closes ------------------------------------------------
    for name, stats in metrics.per_task.items():
        in_queue = sum(1 for j in executor.ready if j.task.name == name)
        running = sum(
            1 for p in executor.processors
            if p.job is not None and p.job.task.name == name
        )
        assert stats.released == stats.completed + stats.missed + in_queue + running, name
        assert stats.dropped <= stats.missed

    # --- non-preemptive, no overlap ----------------------------------------
    assert executor.tracer.verify_non_overlap() == []

    # --- deadline bookkeeping ----------------------------------------------
    for entry in executor.tracer.entries:
        if entry.completed:
            assert entry.finish <= entry.deadline + 1e-12
        else:
            assert entry.finish > entry.deadline - 1e-12
        assert entry.start >= entry.release - 1e-12
        assert entry.finish >= entry.start

    # --- bounded ratios ----------------------------------------------------
    assert 0.0 <= metrics.overall_miss_ratio <= 1.0
    assert 0.0 <= executor.utilization() <= 1.0 + 1e-9
    for w in metrics.windows:
        assert 0.0 <= w.miss_ratio <= 1.0


@given(
    seed=st.integers(min_value=0, max_value=500),
    n_proc=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=15, deadline=None)
def test_rate_bounds_always_respected(seed, n_proc):
    """Whatever HCPerf's adapter does, rates stay inside the allowable range."""
    graph = build(rate=20.0, exec_scale=2.0, fan_out=True)
    executor = RTExecutor(
        graph,
        HCPerfScheduler(),
        SimConfig(n_processors=n_proc, horizon=3.0, coordination_period=0.25,
                  seed=seed),
    )
    observed = []
    executor.add_periodic("probe", 0.25, lambda t: observed.append(executor.get_rate("src")))
    executor.run()
    lo, hi = graph.task("src").rate_range
    assert all(lo <= r <= hi for r in observed)
