"""Unit tests for execution tracing and the Gantt renderer."""

import pytest

from repro.rt import RTExecutor, SimConfig, TraceEntry, TraceRecorder, render_gantt
from repro.schedulers import EDFScheduler
from tests.conftest import build_chain_graph


def traced_run(horizon=1.0, capacity=None, **graph_kwargs):
    g = build_chain_graph(**graph_kwargs)
    ex = RTExecutor(
        g, EDFScheduler(), SimConfig(n_processors=2, horizon=horizon, seed=3)
    )
    ex.tracer = TraceRecorder(capacity=capacity)
    ex.run()
    return ex


def entry(task="t", proc=0, start=0.0, finish=0.01, release=0.0,
          deadline=0.1, cycle=0, completed=True, killed=False):
    return TraceEntry(
        task=task, cycle=cycle, processor=proc, start=start, finish=finish,
        release=release, deadline=deadline, completed=completed, killed=killed,
    )


class TestRecorder:
    def test_records_every_execution(self):
        ex = traced_run()
        m = ex.metrics
        executed = sum(
            s.completed + (s.missed - s.dropped) for s in m.per_task.values()
        )
        assert len(ex.tracer) == executed

    def test_capacity_bounds_memory(self):
        ex = traced_run(capacity=5)
        assert len(ex.tracer) == 5
        assert ex.tracer.dropped > 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            TraceRecorder(capacity=0)

    def test_entry_derived_properties(self):
        e = entry(start=0.02, finish=0.05, release=0.01)
        assert e.duration == pytest.approx(0.03)
        assert e.waited == pytest.approx(0.01)

    def test_grouping(self):
        r = TraceRecorder()
        r.record(entry(task="a", proc=0))
        r.record(entry(task="b", proc=1))
        r.record(entry(task="a", proc=1, start=0.02, finish=0.03))
        assert set(r.by_processor()) == {0, 1}
        assert len(r.by_task()["a"]) == 2

    def test_mean_wait(self):
        r = TraceRecorder()
        r.record(entry(task="a", start=0.01, release=0.0))
        r.record(entry(task="a", start=0.03, release=0.0))
        assert r.mean_wait("a") == pytest.approx(0.02)
        assert r.mean_wait("zzz") == 0.0


class TestNonOverlapInvariant:
    def test_real_run_is_clean(self):
        ex = traced_run(rate=40.0, rate_range=(10.0, 50.0))
        assert ex.tracer.verify_non_overlap() == []

    def test_detects_synthetic_overlap(self):
        r = TraceRecorder()
        r.record(entry(task="a", proc=0, start=0.0, finish=0.05))
        r.record(entry(task="b", proc=0, start=0.03, finish=0.08))
        problems = r.verify_non_overlap()
        assert len(problems) == 1 and "overlaps" in problems[0]

    def test_touching_intervals_allowed(self):
        r = TraceRecorder()
        r.record(entry(task="a", proc=0, start=0.0, finish=0.05))
        r.record(entry(task="b", proc=0, start=0.05, finish=0.08))
        assert r.verify_non_overlap() == []


class TestGantt:
    def test_render_real_trace(self):
        ex = traced_run()
        out = render_gantt(ex.tracer, 0.0, 0.5, width=60)
        assert "p0" in out
        assert "=source" in out and "=sink" in out and "=middle" in out
        # Distinct symbols per task (no first-letter collisions).
        legend = out.splitlines()[-1]
        symbols = [part.split("=")[0].strip() for part in legend[7:].split(",")]
        assert len(set(symbols)) == 3

    def test_missed_jobs_lowercase(self):
        r = TraceRecorder()
        r.record(entry(task="Miss", completed=False, start=0.0, finish=0.5))
        out = render_gantt(r, 0.0, 1.0, width=10)
        assert "a" in out.splitlines()[1]

    def test_killed_jobs_render_distinctly(self):
        # A job killed by a processor failure renders as '#', not as a
        # plain miss, and the header legend names the mark.
        r = TraceRecorder()
        r.record(entry(task="Kill", completed=False, killed=True,
                       start=0.0, finish=0.5))
        r.record(entry(task="Miss", completed=False, start=0.5, finish=0.9,
                       proc=1))
        out = render_gantt(r, 0.0, 1.0, width=10)
        assert "#=killed" in out.splitlines()[0]
        assert "#" in out.splitlines()[1]
        assert "#" not in out.splitlines()[2]

    def test_validation(self):
        r = TraceRecorder()
        with pytest.raises(ValueError):
            render_gantt(r, 1.0, 0.5)
        with pytest.raises(ValueError):
            render_gantt(r, 0.0, 1.0, width=5)

    def test_out_of_window_entries_skipped(self):
        r = TraceRecorder()
        r.record(entry(task="a", proc=0, start=5.0, finish=6.0))
        out = render_gantt(r, 0.0, 1.0, width=10)
        assert "A" not in out.splitlines()[1]
