"""Unit and property tests for execution-time models."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rt import (
    ConstantExecTime,
    ExecContext,
    ExecTimeObserver,
    ScaledExecTime,
    SceneCubicExecTime,
    StepExecTime,
    TraceExecTime,
    TruncatedNormalExecTime,
    UniformExecTime,
)

RNG = random.Random(7)
CTX = ExecContext(now=0.0, scene_complexity=0.0)


class TestConstant:
    def test_sample_is_value(self):
        m = ConstantExecTime(0.02)
        assert m.sample(CTX, RNG) == 0.02
        assert m.mean(CTX) == 0.02

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ConstantExecTime(-0.1)


class TestUniform:
    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            UniformExecTime(-0.1, 0.2)
        with pytest.raises(ValueError):
            UniformExecTime(0.2, 0.1)

    def test_mean(self):
        assert UniformExecTime(0.01, 0.03).mean(CTX) == pytest.approx(0.02)

    @given(
        lo=st.floats(min_value=0.0, max_value=0.05),
        width=st.floats(min_value=0.0, max_value=0.05),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=60)
    def test_samples_within_bounds(self, lo, width, seed):
        m = UniformExecTime(lo, lo + width)
        rng = random.Random(seed)
        for _ in range(20):
            v = m.sample(CTX, rng)
            assert lo <= v <= lo + width


class TestTruncatedNormal:
    def test_validation(self):
        with pytest.raises(ValueError):
            TruncatedNormalExecTime(mu=0.1, sigma=-1.0)
        with pytest.raises(ValueError):
            TruncatedNormalExecTime(mu=0.1, sigma=0.1, lo=0.5, hi=0.2)

    def test_clamping(self):
        m = TruncatedNormalExecTime(mu=0.1, sigma=1.0, lo=0.05, hi=0.15)
        rng = random.Random(0)
        for _ in range(200):
            v = m.sample(CTX, rng)
            assert 0.05 <= v <= 0.15

    def test_mean_clamped(self):
        m = TruncatedNormalExecTime(mu=1.0, sigma=0.1, lo=0.0, hi=0.2)
        assert m.mean(CTX) == pytest.approx(0.2)


class TestSceneCubic:
    def test_cubic_growth(self):
        m = SceneCubicExecTime(base=0.005, coeff=1e-6)
        c10 = m.mean(ExecContext(scene_complexity=10))
        c20 = m.mean(ExecContext(scene_complexity=20))
        assert c20 - 0.005 == pytest.approx(8 * (c10 - 0.005))

    def test_negative_complexity_treated_as_zero(self):
        m = SceneCubicExecTime(base=0.005, coeff=1e-6)
        assert m.mean(ExecContext(scene_complexity=-5)) == pytest.approx(0.005)

    def test_max_value_cap(self):
        m = SceneCubicExecTime(base=0.005, coeff=1.0, max_value=0.1)
        assert m.mean(ExecContext(scene_complexity=100)) == pytest.approx(0.1)
        assert m.sample(ExecContext(scene_complexity=100), RNG) <= 0.1

    def test_jitter_bounds(self):
        m = SceneCubicExecTime(base=0.01, coeff=0.0, jitter=0.1)
        rng = random.Random(1)
        for _ in range(100):
            v = m.sample(CTX, rng)
            assert 0.009 <= v <= 0.011

    def test_validation(self):
        with pytest.raises(ValueError):
            SceneCubicExecTime(base=-1.0, coeff=0.0)
        with pytest.raises(ValueError):
            SceneCubicExecTime(base=0.0, coeff=0.0, jitter=1.5)


class TestStep:
    def test_switches_on_window(self):
        m = StepExecTime(
            normal=ConstantExecTime(0.02),
            elevated=ConstantExecTime(0.04),
            t_on=10.0,
            t_off=80.0,
        )
        assert m.mean(ExecContext(now=5.0)) == 0.02
        assert m.mean(ExecContext(now=10.0)) == 0.04
        assert m.mean(ExecContext(now=79.9)) == 0.04
        assert m.mean(ExecContext(now=80.0)) == 0.02

    def test_sample_follows_window(self):
        m = StepExecTime(
            normal=ConstantExecTime(0.01),
            elevated=ConstantExecTime(0.03),
            t_on=1.0,
            t_off=2.0,
        )
        assert m.sample(ExecContext(now=1.5), RNG) == 0.03
        assert m.sample(ExecContext(now=0.5), RNG) == 0.01

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            StepExecTime(ConstantExecTime(0.01), ConstantExecTime(0.02), t_on=5.0, t_off=1.0)


class TestScaled:
    def test_scaling(self):
        m = ScaledExecTime(ConstantExecTime(0.02), factor=1.5)
        assert m.sample(CTX, RNG) == pytest.approx(0.03)
        assert m.mean(CTX) == pytest.approx(0.03)

    def test_negative_factor_rejected(self):
        with pytest.raises(ValueError):
            ScaledExecTime(ConstantExecTime(0.02), factor=-1.0)


class TestTrace:
    def test_replays_and_cycles(self):
        m = TraceExecTime([0.01, 0.02, 0.03])
        values = [m.sample(CTX, RNG) for _ in range(5)]
        assert values == [0.01, 0.02, 0.03, 0.01, 0.02]

    def test_reset(self):
        m = TraceExecTime([0.01, 0.02])
        m.sample(CTX, RNG)
        m.reset()
        assert m.sample(CTX, RNG) == 0.01

    def test_mean(self):
        assert TraceExecTime([0.01, 0.03]).mean(CTX) == pytest.approx(0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceExecTime([])
        with pytest.raises(ValueError):
            TraceExecTime([0.01, -0.02])


class TestObserver:
    def test_last_run_with_alpha_one(self):
        obs = ExecTimeObserver(alpha=1.0)
        obs.observe("t", 0.01)
        obs.observe("t", 0.05)
        assert obs.estimate("t") == pytest.approx(0.05)

    def test_ewma_blending(self):
        obs = ExecTimeObserver(alpha=0.5)
        obs.observe("t", 0.02)
        obs.observe("t", 0.04)
        assert obs.estimate("t") == pytest.approx(0.03)

    def test_default_for_unknown(self):
        obs = ExecTimeObserver()
        assert obs.estimate("nope", default=0.123) == 0.123

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            ExecTimeObserver(alpha=0.0)
        with pytest.raises(ValueError):
            ExecTimeObserver(alpha=1.5)

    def test_negative_observation_rejected(self):
        obs = ExecTimeObserver()
        with pytest.raises(ValueError):
            obs.observe("t", -0.01)

    def test_drift_zero_without_observations(self):
        assert ExecTimeObserver().max_drift() == 0.0

    def test_drift_relative_to_stable_mark(self):
        obs = ExecTimeObserver(alpha=1.0)
        obs.observe("t", 0.02)
        obs.mark_stable()
        assert obs.max_drift() == pytest.approx(0.0)
        obs.observe("t", 0.04)
        assert obs.max_drift() == pytest.approx(1.0)

    def test_new_task_after_mark_counts_as_full_drift(self):
        obs = ExecTimeObserver(alpha=1.0)
        obs.observe("a", 0.02)
        obs.mark_stable()
        obs.observe("b", 0.01)
        assert obs.max_drift() == pytest.approx(1.0)

    def test_zero_reference_drift(self):
        obs = ExecTimeObserver(alpha=1.0)
        obs.observe("t", 0.0)
        obs.mark_stable()
        obs.observe("t", 0.01)
        assert obs.max_drift() == pytest.approx(1.0)

    def test_estimates_snapshot_is_copy(self):
        obs = ExecTimeObserver()
        obs.observe("t", 0.02)
        snap = obs.estimates()
        snap["t"] = 999.0
        assert obs.estimate("t") == pytest.approx(0.02)

    def test_reset(self):
        obs = ExecTimeObserver()
        obs.observe("t", 0.02)
        obs.mark_stable()
        obs.reset()
        assert obs.estimate("t", default=-1.0) == -1.0
        assert obs.max_drift() == 0.0
