"""Integration-level tests of the discrete-event executor semantics."""

import pytest

from repro.rt import (
    ConstantExecTime,
    JobState,
    RTExecutor,
    SimConfig,
    TaskGraph,
    TaskSpec,
)
from repro.schedulers import EDFScheduler, HPFScheduler
from tests.conftest import build_chain_graph, build_diamond_graph


def run_chain(horizon=1.0, scheduler=None, **graph_kwargs):
    g = build_chain_graph(**graph_kwargs)
    ex = RTExecutor(
        g,
        scheduler or EDFScheduler(),
        SimConfig(n_processors=2, horizon=horizon, coordination_period=0.25, seed=1),
    )
    metrics = ex.run()
    return ex, metrics


class TestReleases:
    def test_source_release_count_matches_rate(self):
        ex, m = run_chain(horizon=1.0, rate=20.0)
        # Releases every 0.05 s over [0, 1]; float accumulation may or may
        # not include the final instant.
        assert m.per_task["source"].released in (20, 21)

    def test_chain_propagates_to_sink(self):
        ex, m = run_chain(horizon=1.0)
        assert m.per_task["sink"].completed > 0
        # Every completed source job should eventually produce one sink job.
        assert m.per_task["sink"].released == m.per_task["middle"].completed

    def test_and_activation_requires_all_predecessors(self):
        g = build_diamond_graph(rate=10.0)
        ex = RTExecutor(
            g, EDFScheduler(), SimConfig(n_processors=2, horizon=1.0, seed=0)
        )
        m = ex.run()
        # The sink fires once per cycle, not once per branch completion.
        assert m.per_task["sink"].released == m.per_task["left"].completed
        assert m.per_task["sink"].released == m.per_task["right"].completed

    def test_provenance_tracks_source_timestamp(self):
        commands = []
        g = build_chain_graph(rate=10.0)
        ex = RTExecutor(
            g,
            EDFScheduler(),
            SimConfig(n_processors=2, horizon=0.5, seed=0),
            on_control=lambda job, now: commands.append((job.sense_time, now)),
        )
        ex.run()
        assert commands, "sink should have produced control commands"
        for sense, now in commands:
            assert sense <= now
            # Sense time is a source release instant: multiple of 0.1 s.
            assert abs(sense / 0.1 - round(sense / 0.1)) < 1e-9


class TestDeadlines:
    def test_late_finish_counts_as_miss_and_blocks_successors(self):
        # middle takes longer than its deadline -> always misses.
        g = build_chain_graph(exec_times=(0.001, 0.2, 0.001), deadlines=(0.05, 0.05, 0.05))
        ex = RTExecutor(
            g, EDFScheduler(), SimConfig(n_processors=2, horizon=1.0, seed=0)
        )
        m = ex.run()
        assert m.per_task["middle"].missed > 0
        assert m.per_task["middle"].completed == 0
        assert m.per_task.get("sink") is None or m.per_task["sink"].released == 0

    def test_drop_expired_skips_execution(self):
        class DroppingEDF(EDFScheduler):
            drop_expired = True

        # One processor, overload: many jobs expire in the queue.
        g = build_chain_graph(
            rate=50.0, exec_times=(0.03, 0.001, 0.001), deadlines=(0.04, 0.05, 0.05)
        )
        ex = RTExecutor(
            g, DroppingEDF(), SimConfig(n_processors=1, horizon=1.0, seed=0)
        )
        m = ex.run()
        assert m.per_task["source"].dropped > 0

    def test_no_drop_executes_late_jobs(self):
        class KeepingEDF(EDFScheduler):
            drop_expired = False

        g = build_chain_graph(
            rate=50.0, exec_times=(0.03, 0.001, 0.001), deadlines=(0.04, 0.05, 0.05)
        )
        ex = RTExecutor(
            g, KeepingEDF(), SimConfig(n_processors=1, horizon=1.0, seed=0,
                                       max_pending_per_task=1000)
        )
        m = ex.run()
        stats = m.per_task["source"]
        assert stats.missed > 0
        # Late jobs ran to completion, so they are not "dropped".
        assert stats.dropped == 0


class TestBoundedChannels:
    def test_eviction_keeps_per_task_backlog_bounded(self):
        g = build_chain_graph(
            rate=45.0,
            rate_range=(10.0, 50.0),
            exec_times=(0.05, 0.001, 0.001),
            deadlines=(1.0, 1.0, 1.0),
        )
        cap = 3
        ex = RTExecutor(
            g,
            EDFScheduler(),
            SimConfig(n_processors=1, horizon=1.0, seed=0, max_pending_per_task=cap),
        )
        probe = []
        ex.add_periodic(
            "probe",
            0.05,
            lambda t: probe.append(
                sum(1 for j in ex.ready if j.task.name == "source")
            ),
        )
        m = ex.run()
        assert max(probe) <= cap
        assert m.per_task["source"].dropped > 0


class TestRates:
    def test_set_rate_changes_release_cadence(self):
        g = build_chain_graph(rate=10.0)
        ex = RTExecutor(g, EDFScheduler(), SimConfig(n_processors=2, horizon=1.0, seed=0))
        ex.add_periodic("bump", 0.5, lambda t: ex.set_rate("source", 40.0))
        m = ex.run()
        # ~5 releases in the first half, ~20 in the second.
        assert 12 <= m.per_task["source"].released <= 28

    def test_set_rate_clamps_to_range(self):
        g = build_chain_graph(rate=10.0, rate_range=(5.0, 20.0))
        ex = RTExecutor(g, EDFScheduler(), SimConfig(horizon=1.0))
        assert ex.set_rate("source", 100.0) == 20.0
        assert ex.set_rate("source", 1.0) == 5.0
        assert ex.get_rate("source") == 5.0

    def test_set_rate_rejects_non_source(self):
        g = build_chain_graph()
        ex = RTExecutor(g, EDFScheduler(), SimConfig(horizon=1.0))
        with pytest.raises(ValueError, match="not a source"):
            ex.set_rate("middle", 10.0)

    def test_set_rate_rejects_nonpositive(self):
        g = build_chain_graph()
        ex = RTExecutor(g, EDFScheduler(), SimConfig(horizon=1.0))
        with pytest.raises(ValueError, match="positive"):
            ex.set_rate("source", 0.0)

    def test_rates_snapshot(self):
        g = build_chain_graph(rate=10.0)
        ex = RTExecutor(g, EDFScheduler(), SimConfig(horizon=1.0))
        assert ex.rates() == {"source": 10.0}


class TestHooks:
    def test_periodic_hook_cadence(self):
        g = build_chain_graph()
        ex = RTExecutor(g, EDFScheduler(), SimConfig(n_processors=2, horizon=1.0, seed=0))
        ticks = []
        ex.add_periodic("probe", 0.1, ticks.append)
        ex.run()
        assert len(ticks) == 10
        assert ticks[0] == pytest.approx(0.1)
        assert ticks[-1] == pytest.approx(1.0)

    def test_periodic_hook_validation(self):
        g = build_chain_graph()
        ex = RTExecutor(g, EDFScheduler(), SimConfig(horizon=1.0))
        with pytest.raises(ValueError):
            ex.add_periodic("bad", 0.0, lambda t: None)

    def test_stop_aborts_run(self):
        g = build_chain_graph()
        ex = RTExecutor(g, EDFScheduler(), SimConfig(n_processors=2, horizon=10.0, seed=0))
        ex.add_periodic("stopper", 0.3, lambda t: ex.stop("test-stop"))
        ex.run()
        assert ex.now <= 0.4
        assert ex.stop_reason == "test-stop"

    def test_control_hook_called_per_sink_completion(self):
        calls = []
        g = build_chain_graph(rate=10.0)
        ex = RTExecutor(
            g,
            EDFScheduler(),
            SimConfig(n_processors=2, horizon=1.0, seed=0),
            on_control=lambda job, now: calls.append(now),
        )
        m = ex.run()
        assert len(calls) == m.per_task["sink"].completed


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        def once():
            g = build_chain_graph(rate=30.0)
            ex = RTExecutor(
                g, EDFScheduler(), SimConfig(n_processors=2, horizon=2.0, seed=9)
            )
            m = ex.run()
            return (
                m.per_task["sink"].completed,
                m.overall_miss_ratio,
                ex.utilization(),
            )

        assert once() == once()

    def test_coordination_windows_closed(self):
        g = build_chain_graph()
        ex = RTExecutor(
            g, EDFScheduler(), SimConfig(n_processors=2, horizon=1.0,
                                         coordination_period=0.25, seed=0)
        )
        m = ex.run()
        assert len(m.windows) == 4

    def test_window_utilization_in_unit_range(self):
        g = build_chain_graph(rate=40.0)
        ex = RTExecutor(g, EDFScheduler(), SimConfig(n_processors=1, horizon=1.0, seed=0))
        m = ex.run()
        for w in m.windows:
            assert 0.0 <= w.utilization <= 1.0 + 1e-9


class TestUtilization:
    def test_utilization_between_zero_and_one(self):
        ex, _ = run_chain(horizon=1.0)
        assert 0.0 <= ex.utilization() <= 1.0

    def test_utilization_zero_before_run(self):
        g = build_chain_graph()
        ex = RTExecutor(g, EDFScheduler(), SimConfig(horizon=1.0))
        assert ex.utilization() == 0.0


class TestConfigValidation:
    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            SimConfig(n_processors=0)
        with pytest.raises(ValueError):
            SimConfig(horizon=0.0)
        with pytest.raises(ValueError):
            SimConfig(coordination_period=0.0)
        with pytest.raises(ValueError):
            SimConfig(max_pending_per_task=0)

    def test_invalid_graph_rejected_at_construction(self):
        g = TaskGraph()
        g.add_task(
            TaskSpec("lonely", priority=1, relative_deadline=0.1,
                     exec_model=ConstantExecTime(0.01))
        )
        with pytest.raises(Exception):
            RTExecutor(g, HPFScheduler(), SimConfig(horizon=1.0))


class TestAndGateStarvation:
    def test_one_missing_branch_starves_the_join(self):
        """Diamond graph: if one branch always misses, the sink never fires."""
        from repro.rt import ConstantExecTime

        g = build_diamond_graph(rate=10.0)
        # Make the 'right' branch impossible: exec time beyond its deadline.
        g.task("right").exec_model = ConstantExecTime(0.5)
        ex = RTExecutor(
            g, EDFScheduler(), SimConfig(n_processors=2, horizon=1.0, seed=0)
        )
        m = ex.run()
        assert m.per_task["left"].completed > 0
        assert m.per_task["right"].completed == 0
        assert "sink" not in m.per_task or m.per_task["sink"].released == 0

    def test_join_fires_once_slow_branch_recovers(self):
        """A slow-but-feasible branch throttles (not kills) the join."""
        from repro.rt import ConstantExecTime, TaskSpec

        g = build_diamond_graph(rate=20.0)
        g.task("right").exec_model = ConstantExecTime(0.04)  # slow, meets D=0.1
        ex = RTExecutor(
            g, EDFScheduler(), SimConfig(n_processors=2, horizon=1.0, seed=0)
        )
        m = ex.run()
        assert m.per_task["sink"].released > 0
        assert m.per_task["sink"].released <= m.per_task["right"].completed
