"""Unit tests for the DAG task graph."""

import pytest

from repro.rt import ConstantExecTime, GraphError, TaskGraph, TaskKind, TaskSpec


def spec(name, priority=1, deadline=0.1, rate=None, rate_range=None):
    return TaskSpec(
        name=name,
        priority=priority,
        relative_deadline=deadline,
        exec_model=ConstantExecTime(0.001),
        rate=rate,
        rate_range=rate_range,
    )


def linear_graph():
    g = TaskGraph()
    g.add_task(spec("a", rate=10.0))
    g.add_task(spec("b"))
    g.add_task(spec("c"))
    g.add_edge("a", "b")
    g.add_edge("b", "c")
    return g


class TestConstruction:
    def test_add_and_lookup(self):
        g = linear_graph()
        assert len(g) == 3
        assert "a" in g and "z" not in g
        assert g.task("b").name == "b"

    def test_duplicate_name_rejected(self):
        g = TaskGraph()
        g.add_task(spec("a", rate=1.0))
        with pytest.raises(GraphError, match="duplicate"):
            g.add_task(spec("a"))

    def test_edge_unknown_task_rejected(self):
        g = TaskGraph()
        g.add_task(spec("a", rate=1.0))
        with pytest.raises(GraphError, match="unknown"):
            g.add_edge("a", "zzz")
        with pytest.raises(GraphError, match="unknown"):
            g.add_edge("zzz", "a")

    def test_self_loop_rejected(self):
        g = TaskGraph()
        g.add_task(spec("a", rate=1.0))
        with pytest.raises(GraphError, match="self-loop"):
            g.add_edge("a", "a")

    def test_unknown_lookup_raises(self):
        with pytest.raises(GraphError, match="unknown"):
            TaskGraph().task("nope")

    def test_iteration_order_is_insertion_order(self):
        g = linear_graph()
        assert [t.name for t in g] == ["a", "b", "c"]


class TestStructure:
    def test_sources_and_sinks(self):
        g = linear_graph()
        assert [t.name for t in g.sources()] == ["a"]
        assert [t.name for t in g.sinks()] == ["c"]

    def test_kind(self):
        g = linear_graph()
        assert g.kind("a") is TaskKind.SOURCE
        assert g.kind("b") is TaskKind.INTERMEDIATE
        assert g.kind("c") is TaskKind.SINK

    def test_ipred_isucc(self):
        g = linear_graph()
        assert [t.name for t in g.ipred("b")] == ["a"]
        assert [t.name for t in g.isucc("b")] == ["c"]
        assert g.ipred("a") == []
        assert g.isucc("c") == []

    def test_edges_listing(self):
        g = linear_graph()
        assert g.edges() == [("a", "b"), ("b", "c")]

    def test_topological_order_linear(self):
        g = linear_graph()
        assert [t.name for t in g.topological_order()] == ["a", "b", "c"]

    def test_topological_order_detects_cycle(self):
        g = linear_graph()
        g.add_edge("c", "b")  # creates a cycle b -> c -> b
        with pytest.raises(GraphError, match="cycle"):
            g.topological_order()

    def test_ancestors_descendants(self):
        g = linear_graph()
        assert g.ancestors("c") == {"a", "b"}
        assert g.descendants("a") == {"b", "c"}
        assert g.ancestors("a") == set()
        assert g.descendants("c") == set()

    def test_source_ancestors(self):
        g = TaskGraph()
        g.add_task(spec("s1", rate=1.0))
        g.add_task(spec("s2", rate=1.0))
        g.add_task(spec("join"))
        g.add_edge("s1", "join")
        g.add_edge("s2", "join")
        assert g.source_ancestors("join") == ["s1", "s2"]
        assert g.source_ancestors("s1") == ["s1"]

    def test_chains_enumerates_all_paths(self):
        g = TaskGraph()
        g.add_task(spec("s", rate=1.0))
        g.add_task(spec("l"))
        g.add_task(spec("r"))
        g.add_task(spec("k"))
        g.add_edge("s", "l")
        g.add_edge("s", "r")
        g.add_edge("l", "k")
        g.add_edge("r", "k")
        chains = g.chains()
        assert ["s", "l", "k"] in chains
        assert ["s", "r", "k"] in chains
        assert len(chains) == 2

    def test_critical_path_length(self):
        g = linear_graph()
        length = g.critical_path_length({"a": 0.01, "b": 0.02, "c": 0.03})
        assert length == pytest.approx(0.06)

    def test_critical_path_takes_longest_branch(self):
        g = TaskGraph()
        g.add_task(spec("s", rate=1.0))
        g.add_task(spec("fast"))
        g.add_task(spec("slow"))
        g.add_task(spec("k"))
        g.add_edge("s", "fast")
        g.add_edge("s", "slow")
        g.add_edge("fast", "k")
        g.add_edge("slow", "k")
        length = g.critical_path_length({"s": 0.01, "fast": 0.01, "slow": 0.1, "k": 0.01})
        assert length == pytest.approx(0.12)


class TestValidation:
    def test_valid_graph_passes(self):
        linear_graph().validate()

    def test_empty_graph_rejected(self):
        with pytest.raises(GraphError, match="empty"):
            TaskGraph().validate()

    def test_source_without_rate_rejected(self):
        g = TaskGraph()
        g.add_task(spec("a"))  # source but no rate
        with pytest.raises(GraphError, match="no rate"):
            g.validate()

    def test_non_source_with_rate_rejected(self):
        g = TaskGraph()
        g.add_task(spec("a", rate=10.0))
        g.add_task(spec("b", rate=10.0))
        g.add_edge("a", "b")
        with pytest.raises(GraphError, match="must not have a rate"):
            g.validate()

    def test_no_sink_rejected(self):
        # Build a cycle-free graph where every task has successors is
        # impossible in a DAG, so "no sink" can only mean a cycle; the
        # cycle error fires first.
        g = linear_graph()
        g.add_edge("c", "b")
        with pytest.raises(GraphError):
            g.validate()


class TestRendering:
    def test_to_dot_contains_nodes_and_edges(self):
        dot = linear_graph().to_dot()
        assert '"a"' in dot and '"a" -> "b"' in dot and dot.startswith("digraph")

    def test_summary_lists_all_tasks(self):
        text = linear_graph().summary()
        for name in ("a", "b", "c"):
            assert name in text
        assert "kind=source" in text
        assert "kind=sink" in text
