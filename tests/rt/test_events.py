"""Unit tests for the event heap."""

import pytest

from repro.rt import Event, EventHeap, EventKind


class TestEventHeap:
    def test_orders_by_time(self):
        heap = EventHeap()
        heap.push(2.0, Event(EventKind.PERIODIC, "late"))
        heap.push(1.0, Event(EventKind.PERIODIC, "early"))
        t, e = heap.pop()
        assert t == 1.0 and e.payload == "early"

    def test_ties_break_in_insertion_order(self):
        heap = EventHeap()
        heap.push(1.0, Event(EventKind.PERIODIC, "first"))
        heap.push(1.0, Event(EventKind.PERIODIC, "second"))
        assert heap.pop()[1].payload == "first"
        assert heap.pop()[1].payload == "second"

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventHeap().push(-1.0, Event(EventKind.PERIODIC))

    def test_peek_time(self):
        heap = EventHeap()
        assert heap.peek_time() is None
        heap.push(3.0, Event(EventKind.PERIODIC))
        assert heap.peek_time() == 3.0
        heap.push(1.5, Event(EventKind.PERIODIC))
        assert heap.peek_time() == 1.5

    def test_len_and_bool(self):
        heap = EventHeap()
        assert not heap and len(heap) == 0
        heap.push(1.0, Event(EventKind.SOURCE_RELEASE, "x"))
        assert heap and len(heap) == 1

    def test_event_is_immutable(self):
        e = Event(EventKind.JOB_FINISH, payload=(0, None))
        with pytest.raises(Exception):
            e.kind = EventKind.PERIODIC
