"""Unit tests for the metrics recorder."""

import pytest

from repro.rt import ConstantExecTime, Job, MetricsRecorder, TaskSpec


def job(name="t", release=0.0, exec_time=0.01, finish=None):
    spec = TaskSpec(
        name=name, priority=1, relative_deadline=0.1, exec_model=ConstantExecTime(exec_time)
    )
    j = Job(task=spec, release_time=release, exec_time=exec_time)
    if finish is not None:
        j.finish_time = finish
    return j


class TestPerTaskStats:
    def test_release_complete_counts(self):
        m = MetricsRecorder()
        j = job("a", release=0.0, finish=0.02)
        m.on_release(j)
        m.on_complete(j)
        stats = m.per_task["a"]
        assert stats.released == 1 and stats.completed == 1 and stats.missed == 0
        assert stats.mean_exec_time == pytest.approx(0.01)
        assert stats.mean_response_time == pytest.approx(0.02)

    def test_miss_ratio(self):
        m = MetricsRecorder()
        good = job("a", finish=0.02)
        bad = job("a", finish=0.5)
        m.on_release(good)
        m.on_release(bad)
        m.on_complete(good)
        m.on_miss(bad, dropped=False)
        assert m.per_task["a"].miss_ratio == pytest.approx(0.5)

    def test_dropped_jobs_do_not_count_exec_time(self):
        m = MetricsRecorder()
        dropped = job("a")
        m.on_release(dropped)
        m.on_miss(dropped, dropped=True)
        stats = m.per_task["a"]
        assert stats.dropped == 1
        assert stats.mean_exec_time == 0.0

    def test_empty_stats_are_zero(self):
        m = MetricsRecorder()
        m.on_release(job("a"))
        stats = m.per_task["a"]
        assert stats.miss_ratio == 0.0
        assert stats.mean_response_time == 0.0


class TestWindows:
    def test_close_window_snapshots_counters(self):
        m = MetricsRecorder()
        j = job("a", finish=0.01)
        m.on_release(j)
        m.on_complete(j)
        m.on_control_command(0.01, 0.005)
        w = m.close_window(0.5, utilization=0.4)
        assert w.completed == 1 and w.missed == 0 and w.control_commands == 1
        assert w.miss_ratio == 0.0
        assert w.utilization == pytest.approx(0.4)
        assert w.throughput == pytest.approx(2.0)  # 1 command / 0.5 s

    def test_window_counters_reset(self):
        m = MetricsRecorder()
        j = job("a", finish=0.01)
        m.on_release(j)
        m.on_complete(j)
        m.close_window(0.5)
        w2 = m.close_window(1.0)
        assert w2.completed == 0 and w2.t_start == 0.5 and w2.t_end == 1.0

    def test_window_miss_ratio(self):
        m = MetricsRecorder()
        good, bad = job("a", finish=0.01), job("a", finish=9.9)
        for j in (good, bad):
            m.on_release(j)
        m.on_complete(good)
        m.on_miss(bad, dropped=False)
        w = m.close_window(1.0)
        assert w.miss_ratio == pytest.approx(0.5)

    def test_empty_window_ratios_zero(self):
        m = MetricsRecorder()
        w = m.close_window(1.0)
        assert w.miss_ratio == 0.0 and w.throughput == 0.0

    def test_degenerate_window_throughput(self):
        m = MetricsRecorder()
        m.close_window(0.0)
        assert m.windows[0].throughput == 0.0

    def test_series_accessors(self):
        m = MetricsRecorder()
        m.close_window(0.5)
        m.close_window(1.0)
        assert [t for t, _ in m.miss_ratio_series()] == [0.5, 1.0]
        assert [t for t, _ in m.throughput_series()] == [0.5, 1.0]


class TestAggregates:
    def test_overall_miss_ratio(self):
        m = MetricsRecorder()
        for i in range(3):
            j = job("a", finish=0.01)
            m.on_release(j)
            m.on_complete(j)
        bad = job("a", finish=9.0)
        m.on_release(bad)
        m.on_miss(bad, dropped=False)
        assert m.overall_miss_ratio == pytest.approx(0.25)
        assert m.total_finished == 4

    def test_overall_miss_ratio_empty(self):
        assert MetricsRecorder().overall_miss_ratio == 0.0

    def test_control_metrics(self):
        m = MetricsRecorder()
        m.on_control_command(1.0, 0.004)
        m.on_control_command(2.0, 0.006)
        assert m.control_response_times() == [0.004, 0.006]
        assert m.mean_control_response() == pytest.approx(0.005)
        assert m.control_throughput(horizon=4.0) == pytest.approx(0.5)

    def test_control_metrics_empty(self):
        m = MetricsRecorder()
        assert m.mean_control_response() == 0.0
        assert m.control_throughput(10.0) == 0.0
        assert m.control_throughput(0.0) == 0.0
