"""ProcessorProfile / UnitSpec: parsing, identity, typed addressing, wiring."""

import pytest

from repro.rt import ProcessorProfile, SimConfig, UnitSpec


class TestUnitSpec:
    def test_defaults_are_identity(self):
        u = UnitSpec()
        assert u.type == "CPU" and u.speedup == 1.0 and u.is_identity

    def test_non_cpu_or_scaled_units_are_not_identity(self):
        assert not UnitSpec(type="GPU").is_identity
        assert not UnitSpec(speedup=2.0).is_identity

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            UnitSpec(type="2bad")
        with pytest.raises(ValueError):
            UnitSpec(speedup=0.0)
        with pytest.raises(ValueError):
            UnitSpec(speedup=-1.0)


class TestParse:
    def test_single_segment(self):
        p = ProcessorProfile.parse("cpu")
        assert p.n_units == 1 and p.units[0] == UnitSpec("CPU", 1.0)

    def test_counts_types_and_speedups(self):
        p = ProcessorProfile.parse("2xCPU + 1xGPU@3")
        assert [u.type for u in p.units] == ["CPU", "CPU", "GPU"]
        assert p.units[2].speedup == 3.0

    def test_describe_round_trips(self):
        for text in ("2xCPU", "2xCPU+1xGPU@3", "1xCPU+2xGPU@2.5+1xDSP@0.5"):
            p = ProcessorProfile.parse(text)
            assert ProcessorProfile.parse(p.describe()) == p
            assert p.describe() == text

    def test_describe_groups_runs_and_omits_unit_speedup(self):
        p = ProcessorProfile(
            units=(UnitSpec("CPU"), UnitSpec("CPU"), UnitSpec("GPU", 3.0))
        )
        assert p.describe() == "2xCPU+1xGPU@3"
        assert str(p) == p.describe()

    @pytest.mark.parametrize("bad", ["", "0xCPU", "CPU@0", "CPU@-1", "+", "CPU++GPU"])
    def test_rejects_malformed_text(self, bad):
        with pytest.raises(ValueError):
            ProcessorProfile.parse(bad)


class TestProfile:
    def test_homogeneous_is_identity(self):
        p = ProcessorProfile.homogeneous(3)
        assert p.n_units == 3 and p.is_identity
        assert p.unit_types() == ["CPU"]

    def test_mixed_profile_is_not_identity(self):
        assert not ProcessorProfile.parse("1xCPU+1xGPU").is_identity
        # speedup != 1 alone breaks identity even on an all-CPU platform
        assert not ProcessorProfile.homogeneous(2, speedup=2.0).is_identity

    def test_typed_index_and_count(self):
        p = ProcessorProfile.parse("1xGPU+2xCPU+1xGPU")
        assert p.count("GPU") == 2 and p.count("CPU") == 2
        assert p.typed_index("GPU", 0) == 0
        assert p.typed_index("GPU", 1) == 3
        assert p.typed_index("CPU", 1) == 2
        assert p.indices_of("GPU") == [0, 3]

    def test_typed_index_errors(self):
        p = ProcessorProfile.parse("2xCPU")
        with pytest.raises(ValueError):
            p.typed_index("GPU", 0)
        with pytest.raises(ValueError):
            p.typed_index("CPU", 2)

    def test_coerce_accepts_all_forms(self):
        p = ProcessorProfile.parse("2xCPU+1xGPU")
        assert ProcessorProfile.coerce(p) is p
        assert ProcessorProfile.coerce("2xCPU+1xGPU") == p
        assert ProcessorProfile.coerce(tuple(p.units)) == p
        with pytest.raises(TypeError):
            ProcessorProfile.coerce(3)

    def test_dict_round_trip(self):
        p = ProcessorProfile.parse("2xCPU+1xGPU@3")
        assert ProcessorProfile.from_dict(p.to_dict()) == p

    def test_empty_profile_rejected(self):
        with pytest.raises(ValueError):
            ProcessorProfile(units=())


class TestSimConfigWiring:
    def test_profile_sets_processor_count(self):
        cfg = SimConfig(processor_profile="2xCPU+1xGPU@3", horizon=1.0)
        assert cfg.n_processors == 3
        assert isinstance(cfg.processor_profile, ProcessorProfile)

    def test_profile_object_passes_through(self):
        p = ProcessorProfile.homogeneous(4)
        cfg = SimConfig(processor_profile=p, horizon=1.0)
        assert cfg.n_processors == 4
        assert cfg.resolved_profile() is p

    def test_no_profile_resolves_to_identity(self):
        cfg = SimConfig(n_processors=2, horizon=1.0)
        resolved = cfg.resolved_profile()
        assert resolved.is_identity and resolved.n_units == 2
