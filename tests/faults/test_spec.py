"""FaultSpec data model: validation, JSON round-trips, identity hashing."""

import json
import math

import pytest

from repro.faults import (
    FAULT_KINDS,
    ComplexitySurge,
    DeadlineStorm,
    ExecTimeBurst,
    ExecTimeSpike,
    FaultSpec,
    ProcessorFailure,
    SensorDropout,
    load_fault_spec,
)


def sample_spec():
    return FaultSpec(
        name="sample",
        seed=3,
        faults=[
            ExecTimeSpike(task="sensor_fusion", t_on=1.0, t_off=2.0, factor=2.0),
            ExecTimeBurst(task="planning", rate=0.5, duration=0.2, factor=3.0),
            SensorDropout(task="camera_front", t_on=4.0, t_off=5.0),
            ProcessorFailure(processor=1, t_fail=6.0, t_recover=7.0),
            DeadlineStorm(t_on=8.0, t_off=8.5, factor=4.0),
            ComplexitySurge(t_on=9.0, t_off=9.5, scale=2.0, add=5.0),
        ],
    )


class TestValidation:
    def test_windows_must_be_ordered(self):
        with pytest.raises(ValueError):
            ExecTimeSpike(task="x", t_on=2.0, t_off=1.0)
        with pytest.raises(ValueError):
            SensorDropout(task="x", t_on=-1.0, t_off=1.0)

    def test_storm_must_slow_down(self):
        with pytest.raises(ValueError):
            DeadlineStorm(t_on=0.0, t_off=1.0, factor=0.5)

    def test_recovery_after_failure(self):
        with pytest.raises(ValueError):
            ProcessorFailure(processor=0, t_fail=5.0, t_recover=5.0)

    def test_burst_needs_positive_rate_and_duration(self):
        with pytest.raises(ValueError):
            ExecTimeBurst(task="x", rate=0.0, duration=0.1, factor=2.0)
        with pytest.raises(ValueError):
            ExecTimeBurst(task="x", rate=1.0, duration=0.0, factor=2.0)

    def test_spec_rejects_non_models(self):
        with pytest.raises(TypeError):
            FaultSpec(faults=[{"kind": "exec_spike"}])


class TestRoundTrip:
    def test_dict_round_trip_every_kind(self):
        spec = sample_spec()
        clone = FaultSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert {f.kind for f in clone.faults} == set(FAULT_KINDS)

    def test_json_round_trip_via_file(self, tmp_path):
        spec = sample_spec()
        path = tmp_path / "spec.json"
        spec.save(path)
        assert load_fault_spec(path) == spec
        # the file is plain JSON (inf encoded as null, not Infinity)
        assert "Infinity" not in path.read_text()
        payload = json.loads(path.read_text())
        burst = next(f for f in payload["faults"] if f["kind"] == "exec_burst")
        assert burst["t_off"] is None

    def test_unbounded_burst_round_trips_to_inf(self):
        spec = FaultSpec(faults=[ExecTimeBurst(task="x", rate=1.0, duration=0.1, factor=2.0)])
        clone = FaultSpec.from_dict(spec.to_dict())
        assert math.isinf(clone.faults[0].t_off)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec.from_dict({"faults": [{"kind": "gremlin"}]})

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown fields"):
            FaultSpec.from_dict(
                {"faults": [{"kind": "sensor_dropout", "task": "x",
                             "t_on": 0.0, "t_off": 1.0, "typo": 1}]}
            )
        with pytest.raises(ValueError, match="unknown fault-spec fields"):
            FaultSpec.from_dict({"typo": 1})


class TestIdentity:
    def test_hash_is_stable_and_content_sensitive(self):
        a, b = sample_spec(), sample_spec()
        assert a.spec_hash() == b.spec_hash()
        assert len(a.spec_hash()) == 16
        c = sample_spec()
        c.seed = 4
        assert c.spec_hash() != a.spec_hash()

    def test_onset_and_clear_span_the_faults(self):
        spec = sample_spec()
        assert spec.first_onset() == 0.0  # the burst starts at t_on=0
        assert spec.last_clear() == math.inf  # unbounded burst window
        assert FaultSpec().first_onset() is None
        assert FaultSpec().last_clear() is None

    def test_empty_flag(self):
        assert FaultSpec().is_empty
        assert not sample_spec().is_empty
