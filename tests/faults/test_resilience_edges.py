"""Resilience edge cases: zero-miss runs, no recovery, single-tick traces."""

import dataclasses
import json
import math

from repro.faults import ExecTimeSpike, FaultSpec, run_resilience
from repro.workloads.scenarios import fig13_car_following


def short_fig13():
    return fig13_car_following(horizon=10.0)


def mild_spec():
    """A spike with factor 1.0: present on the timeline, zero extra load."""
    return FaultSpec(
        name="mild",
        faults=[
            ExecTimeSpike(task="sensor_fusion", t_on=2.0, t_off=3.0, factor=1.0)
        ],
    )


def crushing_spec(t_on=2.0, t_off=9.9):
    return FaultSpec(
        name="crush",
        faults=[
            ExecTimeSpike(task="sensor_fusion", t_on=t_on, t_off=t_off, factor=50.0)
        ],
    )


class TestZeroMissRuns:
    """A fault that causes no misses must not invent degradation."""

    def test_report_is_all_zeros_but_still_recovers(self):
        report = run_resilience(short_fig13, "HCPerf", mild_spec(), seed=0)
        assert report.peak_miss_ratio == 0.0
        assert report.baseline_miss_ratio == 0.0
        assert report.steady_state_miss_ratio == 0.0
        assert report.recovered
        assert report.time_to_recover == 0.0
        assert all(ratio == 0.0 for _, ratio in report.miss_ratio_series)
        # twin runs share the seed, so a no-op fault costs nothing
        assert report.tracking_error_degradation == 0.0
        assert report.fault_events  # the no-op fault still left its marks

    def test_zero_miss_report_serializes(self):
        report = run_resilience(short_fig13, "EDF", mild_spec(), seed=0)
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["peak_miss_ratio"] == 0.0
        assert payload["recovered"] is True


class TestRecoveryNeverReached:
    def test_fault_clearing_at_horizon_leaves_no_room(self):
        # The fault clears 0.1 s before the end: fewer than RECOVERY_WINDOWS
        # calm windows can follow, so recovery must not be declared.
        report = run_resilience(short_fig13, "EDF", crushing_spec(), seed=0)
        assert not report.recovered
        assert report.time_to_recover is None
        assert report.peak_miss_ratio > 0.0

    def test_impossible_window_requirement(self):
        # Demanding more calm windows than the horizon holds can never pass.
        report = run_resilience(
            short_fig13, "HCPerf", crushing_spec(t_off=4.0), seed=0,
            recovery_windows=10_000,
        )
        assert not report.recovered
        assert report.time_to_recover is None

    def test_permanent_fault_reports_no_clear_time(self):
        spec = FaultSpec(
            name="forever",
            faults=[
                ExecTimeSpike(
                    task="sensor_fusion", t_on=2.0, t_off=math.inf, factor=50.0
                )
            ],
        )
        report = run_resilience(short_fig13, "EDF", spec, seed=0)
        # inf clamps to the horizon: the fault never clears inside the run
        assert report.fault_clear == report.horizon
        assert not report.recovered


class TestSingleTickTraces:
    """One coordination window of history must produce a sane report."""

    def single_window_fig13(self):
        scenario = fig13_car_following(horizon=10.0)
        sim = dataclasses.replace(scenario.sim, coordination_period=10.0)
        return dataclasses.replace(scenario, sim=sim)

    def test_one_window_run(self):
        spec = FaultSpec(
            name="tick",
            faults=[
                ExecTimeSpike(task="sensor_fusion", t_on=1.0, t_off=2.0, factor=4.0)
            ],
        )
        report = run_resilience(self.single_window_fig13, "EDF", spec, seed=0)
        assert len(report.miss_ratio_series) == 1
        # a single window can never satisfy a 3-window calm streak
        assert not report.recovered
        assert report.time_to_recover is None
        assert 0.0 <= report.steady_state_miss_ratio <= 1.0
        assert report.peak_miss_ratio == report.miss_ratio_series[0][1]

    def test_one_window_zero_miss_run(self):
        report = run_resilience(
            self.single_window_fig13, "HCPerf", mild_spec(), seed=0,
            recovery_windows=1,
        )
        assert len(report.miss_ratio_series) == 1
        assert report.recovered
        # the single window closes at the horizon; recovery is dated there
        window_end = report.miss_ratio_series[0][0]
        assert report.time_to_recover == window_end - report.fault_clear
