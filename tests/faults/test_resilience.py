"""Twin-run recovery metrics and the named suite registry."""

import json

import pytest

from repro.faults import (
    ExecTimeSpike,
    FaultSpec,
    NAMED_SPECS,
    ProcessorFailure,
    canonical_suite,
    get_spec,
    list_specs,
    run_resilience,
)
from repro.workloads.scenarios import fig13_car_following


def short_fig13():
    return fig13_car_following(horizon=10.0)


def spike_spec():
    return FaultSpec(
        name="spike",
        faults=[ExecTimeSpike(task="sensor_fusion", t_on=2.0, t_off=4.0, factor=2.0)],
    )


class TestSuiteRegistry:
    def test_every_named_spec_builds_and_hashes(self):
        for name in list_specs():
            spec = get_spec(name)
            assert spec.name == name
            assert len(spec.spec_hash()) == 16

    def test_canonical_is_registered(self):
        assert "canonical" in NAMED_SPECS
        assert canonical_suite().name == "canonical"
        assert len(canonical_suite().faults) >= 3

    def test_unknown_name_lists_catalog(self):
        with pytest.raises(ValueError, match="canonical"):
            get_spec("nope")


class TestRunResilience:
    def test_report_shape_and_recovery(self):
        report = run_resilience(short_fig13, "HCPerf", spike_spec(), seed=0)
        assert report.scheduler == "HCPerf"
        assert report.spec_name == "spike"
        assert report.fault_onset == 2.0
        assert report.fault_clear == 4.0
        assert report.recovered
        assert report.time_to_recover is not None and report.time_to_recover >= 0.0
        assert 0.0 <= report.peak_miss_ratio <= 1.0
        assert report.miss_ratio_series  # the recovery curve is populated
        # the report is JSON-clean, degradation derived from the twin pair
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["tracking_error_degradation"] == pytest.approx(
            report.tracking_error_rms - report.tracking_error_rms_clean
        )

    def test_empty_spec_trivially_recovered(self):
        report = run_resilience(short_fig13, "EDF", FaultSpec(), seed=0)
        assert report.recovered
        assert report.time_to_recover == 0.0
        assert report.fault_onset is None and report.fault_clear is None
        assert report.fault_events == []

    def test_permanent_fault_never_recovers(self):
        # An unbounded fault's clear time clamps to the horizon: recovery
        # is judged on the end-of-run tail, which a dead CPU keeps noisy.
        spec = FaultSpec(
            name="dead-cpu",
            faults=[ProcessorFailure(processor=1, t_fail=3.0)],
        )
        report = run_resilience(short_fig13, "EDF", spec, seed=0)
        assert report.fault_clear == report.horizon
        assert not report.recovered
        assert report.time_to_recover is None
        assert report.steady_state_miss_ratio > report.baseline_miss_ratio

    def test_registry_key_scenario_accepted(self):
        report = run_resilience("fig13", "EDF", FaultSpec(), seed=0)
        assert report.scenario == "fig13_car_following"
        assert report.horizon == 90.0
