"""The subsystem's two reproducibility contracts, pinned as properties.

1. An *empty* spec is byte-identical to running with no harness at all —
   attaching it must not perturb a single RNG draw, event, or metric, in
   a direct run and through the fleet engine at any worker count.
2. The same (spec, seed) always produces the same fault event log and the
   same run summary — fault injection is replay, not noise.
"""

import json

from repro.experiments.runner import run_scenario
from repro.faults import ExecTimeBurst, FaultSpec, InjectionHarness
from repro.fleet import CampaignSpec
from repro.fleet.engine import run_campaign
from repro.fleet.store import ResultStore
from repro.workloads.scenarios import fig13_car_following


def scenario():
    return fig13_car_following(horizon=8.0)


def summary_json(result):
    return json.dumps(result.to_dict(), sort_keys=True)


class TestEmptySpecIsInvisible:
    def test_direct_run_byte_identical(self):
        bare = run_scenario(scenario(), "HCPerf", seed=0)
        harness = InjectionHarness(FaultSpec(name="empty"))
        gated = run_scenario(scenario(), "HCPerf", seed=0, before_run=harness.attach)
        assert summary_json(bare) == summary_json(gated)
        assert harness.events == []

    def test_fleet_campaign_byte_identical_across_worker_counts(self, tmp_path):
        spec = CampaignSpec(
            name="det",
            scenarios=["fig13"],
            schedulers=["EDF", "HCPerf"],
            seeds=[0, 1],
            variants=[{"horizon": 6.0}],
            faults=[None, "fusion_spike"],
        )

        def records(jobs):
            store = tmp_path / f"store_{jobs}.jsonl"
            run_campaign(spec, store=store, jobs=jobs)
            return sorted(
                json.dumps(r, sort_keys=True) for r in ResultStore(store).records()
            )

        assert records(1) == records(4)

    def test_fleet_empty_inline_spec_matches_fault_free_summary(self, tmp_path):
        empty = FaultSpec(name="empty").to_dict()
        spec = CampaignSpec(
            name="empty-inline",
            scenarios=["fig13"],
            schedulers=["HCPerf"],
            seeds=[0],
            variants=[{"horizon": 6.0}],
            faults=[None, empty],
        )
        store = tmp_path / "store.jsonl"
        run_campaign(spec, store=store, jobs=1)
        summaries = [r["summary"] for r in ResultStore(store).records()]
        assert len(summaries) == 2
        with_faults = next(s for s in summaries if "fault_events" in s)
        without = next(s for s in summaries if "fault_events" not in s)
        assert with_faults.pop("fault_events") == []
        assert json.dumps(with_faults, sort_keys=True) == json.dumps(
            without, sort_keys=True
        )


def bursty_spec():
    return FaultSpec(
        name="bursty",
        seed=11,
        faults=[
            ExecTimeBurst(
                task="sensor_fusion", rate=1.0, duration=0.5, factor=3.0,
                t_on=1.0, t_off=7.0,
            )
        ],
    )


class TestSameSpecSameFaults:
    def test_event_log_and_summary_replay(self):
        spec = bursty_spec()

        def one_run():
            harness = InjectionHarness(spec)
            result = run_scenario(
                scenario(), "HCPerf", seed=0, before_run=harness.attach
            )
            return harness.events_dict(), summary_json(result)

        events_a, summary_a = one_run()
        events_b, summary_b = one_run()
        assert events_a == events_b
        assert summary_a == summary_b
        assert events_a  # the bursts actually fired

    def test_fault_timeline_independent_of_run_seed(self):
        # The spec seed owns the fault timeline; the run seed only varies
        # the workload.  Burst on/off marks must land at the same instants.

        def marks(run_seed):
            harness = InjectionHarness(bursty_spec())
            run_scenario(scenario(), "HCPerf", seed=run_seed, before_run=harness.attach)
            return [
                (e.t, e.kind) for e in harness.events if e.kind == "exec_burst"
            ]

        assert marks(0) == marks(1)
