"""``hcperf faults`` subcommand: list, run, spec resolution, determinism."""

import json

from repro.cli import main as hcperf_main
from repro.faults import FaultSpec


class TestList:
    def test_names_every_spec_and_kind(self, capsys):
        assert hcperf_main(["faults", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("canonical", "fusion_spike", "cpu_failure"):
            assert name in out
        for kind in ("exec_spike", "sensor_dropout", "processor_failure"):
            assert kind in out


class TestRun:
    def test_named_spec_with_alias_and_lowercase_scheduler(self, capsys):
        code = hcperf_main(
            ["faults", "run", "car_following", "hcperf",
             "--spec", "fusion_spike", "--horizon", "30"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "scheduler   : HCPerf" in out
        assert "fusion_spike" in out

    def test_json_output_is_deterministic(self, capsys):
        argv = ["faults", "run", "fig13", "EDF",
                "--spec", "fusion_spike", "--horizon", "20", "--json"]
        assert hcperf_main(argv) == 0
        first = capsys.readouterr().out
        assert hcperf_main(argv) == 0
        assert capsys.readouterr().out == first
        payload = json.loads(first)
        assert payload["scheduler"] == "EDF"
        assert payload["spec_name"] == "fusion_spike"
        assert payload["fault_events"]

    def test_spec_file_wins_over_names(self, tmp_path, capsys):
        path = tmp_path / "empty.json"
        FaultSpec(name="from-file").save(path)
        code = hcperf_main(
            ["faults", "run", "fig13", "EDF", "--spec", str(path),
             "--horizon", "10"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "from-file" in out
        assert "none (empty spec)" in out

    def test_unknown_spec_is_a_usage_error(self, capsys):
        code = hcperf_main(
            ["faults", "run", "fig13", "EDF", "--spec", "no_such_spec"]
        )
        assert code == 2
        assert "unknown fault spec" in capsys.readouterr().err

    def test_unknown_scheduler_is_a_usage_error(self, capsys):
        code = hcperf_main(
            ["faults", "run", "fig13", "NotAScheduler", "--spec", "canonical"]
        )
        assert code == 2
        assert "scheduler" in capsys.readouterr().err
