"""Processor failures on typed platforms.

Typed addressing (``unit="GPU", processor=k``) must resolve to the k-th
unit of that type, surviving jobs of an affine task must only ever land on
the remaining compatible units, and the resilience twin-run machinery must
work unchanged on a heterogeneous profile.
"""

import pytest

from repro.faults import FaultSpec, InjectionHarness, ProcessorFailure
from repro.obs.recorder import Recorder
from repro.rt import ConstantExecTime, RTExecutor, SimConfig, TaskGraph, TaskSpec
from repro.schedulers import EDFScheduler


def gpu_pipeline() -> TaskGraph:
    """src(CPU) -> detect(GPU-only) -> sink(CPU), loaded enough that the
    detector is almost always in flight."""
    g = TaskGraph()
    g.add_task(TaskSpec("src", priority=3, relative_deadline=0.1,
                        exec_model=ConstantExecTime(0.001),
                        rate=40.0, rate_range=(10.0, 50.0),
                        affinity=frozenset({"CPU"})))
    g.add_task(TaskSpec("detect", priority=2, relative_deadline=0.1,
                        exec_model=ConstantExecTime(0.012),
                        affinity=frozenset({"GPU"}), speedup={"GPU": 1.0}))
    g.add_task(TaskSpec("sink", priority=1, relative_deadline=0.1,
                        exec_model=ConstantExecTime(0.001),
                        affinity=frozenset({"CPU"})))
    g.add_edge("src", "detect")
    g.add_edge("detect", "sink")
    g.validate()
    return g


def run_with_failure(fault, profile="1xCPU+2xGPU", horizon=1.0, seed=4):
    graph = gpu_pipeline()
    executor = RTExecutor(
        graph, EDFScheduler(),
        SimConfig(processor_profile=profile, horizon=horizon,
                  coordination_period=0.25, seed=seed),
    )
    executor.recorder = Recorder()
    harness = InjectionHarness(FaultSpec(faults=[fault]))
    harness.attach(executor)
    executor.run()
    return executor, harness


class TestTypedAddressing:
    def test_unit_ordinal_resolves_to_absolute_index(self):
        fault = ProcessorFailure(unit="GPU", processor=1, t_fail=0.3)
        executor, harness = run_with_failure(fault)
        # profile is 1xCPU+2xGPU, so GPU[1] is absolute index 2
        assert not executor.processors[2].available
        assert executor.processors[1].available
        details = [e.detail for e in harness.events]
        assert any("processor=2 (GPU[1])" in d for d in details)

    def test_unknown_unit_type_rejected_at_attach(self):
        graph = gpu_pipeline()
        executor = RTExecutor(
            graph, EDFScheduler(),
            SimConfig(processor_profile="1xCPU+2xGPU", horizon=1.0, seed=0),
        )
        harness = InjectionHarness(FaultSpec(faults=[
            ProcessorFailure(unit="TPU", processor=0, t_fail=0.1),
        ]))
        with pytest.raises(ValueError, match="processor_failure"):
            harness.attach(executor)

    def test_out_of_range_ordinal_rejected_at_attach(self):
        graph = gpu_pipeline()
        executor = RTExecutor(
            graph, EDFScheduler(),
            SimConfig(processor_profile="1xCPU+2xGPU", horizon=1.0, seed=0),
        )
        harness = InjectionHarness(FaultSpec(faults=[
            ProcessorFailure(unit="GPU", processor=2, t_fail=0.1),
        ]))
        with pytest.raises(ValueError, match="processor_failure"):
            harness.attach(executor)

    def test_untyped_addressing_still_absolute(self):
        fault = ProcessorFailure(processor=0, t_fail=0.3)
        executor, _ = run_with_failure(fault)
        assert not executor.processors[0].available
        assert executor.processors[0].unit_type == "CPU"

    def test_unit_field_round_trips_through_json(self):
        spec = FaultSpec(faults=[
            ProcessorFailure(unit="GPU", processor=1, t_fail=0.5, t_recover=0.8),
        ])
        clone = FaultSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.faults[0].unit == "GPU"


class TestRedispatchCompatibility:
    def test_gpu_kill_redispatches_only_to_surviving_gpu(self):
        """After GPU[0] dies, every detector span lands on GPU[1] — never
        on the CPU, and never on the dead unit."""
        fault = ProcessorFailure(unit="GPU", processor=0, t_fail=0.3)
        executor, _ = run_with_failure(fault, horizon=1.2)
        gpu0 = executor.typed_processor_index("GPU", 0)  # absolute 1
        gpu1 = executor.typed_processor_index("GPU", 1)  # absolute 2

        detect_spans = [s for s in executor.recorder.spans() if s.task == "detect"]
        assert detect_spans, "detector never ran"
        before = [s for s in detect_spans if s.start < 0.3]
        after = [s for s in detect_spans if s.start >= 0.3]
        assert after, "detector never re-dispatched after the failure"
        assert {s.processor for s in before} <= {gpu0, gpu1}
        assert {s.processor for s in after} == {gpu1}
        assert all(s.unit == "GPU" for s in detect_spans)
        # the pipeline keeps producing despite the dead accelerator
        assert executor.metrics.per_task["detect"].completed > 0

    def test_in_flight_gpu_job_is_killed_not_migrated(self):
        fault = ProcessorFailure(unit="GPU", processor=0, t_fail=0.3)
        executor, harness = run_with_failure(fault, horizon=0.6)
        kills = [s for s in executor.recorder.spans() if s.outcome == "kill"]
        details = " ".join(e.detail for e in harness.events)
        if "killed=" in details:
            assert kills and all(s.unit == "GPU" for s in kills)

    def test_all_gpus_dead_starves_the_affine_task(self):
        """With every compatible unit gone, the GPU task stops executing
        but the engine stays live (releases keep getting accounted)."""
        fault = ProcessorFailure(unit="GPU", processor=0, t_fail=0.2)
        graph = gpu_pipeline()
        executor = RTExecutor(
            graph, EDFScheduler(),
            SimConfig(processor_profile="1xCPU+1xGPU", horizon=0.8,
                      coordination_period=0.25, seed=4),
        )
        executor.recorder = Recorder()
        harness = InjectionHarness(FaultSpec(faults=[fault]))
        harness.attach(executor)
        metrics = executor.run()
        late = [s for s in executor.recorder.spans()
                if s.task == "detect" and s.start >= 0.2]
        assert late == []
        assert metrics.per_task["src"].released > 0


class TestHeterogeneousTwinRun:
    def test_resilience_report_on_heterogeneous_profile(self):
        """The twin-run resilience flow accepts a typed-platform scenario
        and attributes degradation to the GPU failure window."""
        from repro.experiments.heterogeneous import build_scenario
        from repro.faults.resilience import run_resilience

        def factory():
            scenario = build_scenario("heterogeneous", horizon=12.0)
            # keep the twin pair fast but past the failure window
            return scenario

        spec = FaultSpec(
            name="gpu-blip",
            faults=[ProcessorFailure(unit="GPU", processor=0,
                                     t_fail=4.0, t_recover=7.0)],
        )
        report = run_resilience(factory, "EDF", spec, seed=0)
        payload = report.to_dict()
        assert payload["fault_events"], "failure never fired"
        assert any("GPU[0]" in e["detail"] for e in payload["fault_events"])
        # misses during the dead-GPU window exceed the pre-fault level
        assert report.peak_miss_ratio >= report.baseline_miss_ratio
