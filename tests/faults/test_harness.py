"""InjectionHarness wiring: each fault kind lands on the right seam."""

import pytest

from repro.faults import (
    ComplexitySurge,
    DeadlineStorm,
    ExecTimeBurst,
    ExecTimeSpike,
    FaultSpec,
    InjectionHarness,
    ProcessorFailure,
    SensorDropout,
)
from repro.faults.harness import _ModulatedExecTime
from repro.rt import RTExecutor, SimConfig, TraceRecorder
from repro.schedulers import EDFScheduler
from tests.conftest import build_chain_graph


def make_executor(n_processors=2, horizon=1.0, seed=3, **graph_kwargs):
    g = build_chain_graph(**graph_kwargs)
    ex = RTExecutor(
        g, EDFScheduler(), SimConfig(n_processors=n_processors, horizon=horizon, seed=seed)
    )
    ex.tracer = TraceRecorder()
    return ex


def run_with(spec, **kwargs):
    ex = make_executor(**kwargs)
    harness = InjectionHarness(spec)
    harness.attach(ex)
    ex.run()
    return ex, harness


class TestAttachment:
    def test_empty_spec_is_a_strict_no_op(self):
        ex = make_executor()
        harness = InjectionHarness(FaultSpec())
        harness.attach(ex)
        assert harness.events == []
        assert ex.release_gate is None
        assert not isinstance(ex.graph.task("middle").exec_model, _ModulatedExecTime)

    def test_attach_is_single_use(self):
        harness = InjectionHarness(FaultSpec())
        harness.attach(make_executor())
        with pytest.raises(RuntimeError):
            harness.attach(make_executor())


class TestExecTimeFaults:
    def test_spike_causes_misses_only_in_window(self):
        spec = FaultSpec(faults=[
            ExecTimeSpike(task="middle", t_on=0.2, t_off=0.4, add=0.1),
        ])
        clean_ex, _ = run_with(FaultSpec())
        ex, harness = run_with(spec)
        assert clean_ex.metrics.per_task["middle"].missed == 0
        assert ex.metrics.per_task["middle"].missed > 0
        # every miss happened inside the spike window
        missed = [e for e in ex.tracer.entries if not e.completed]
        assert missed and all(0.2 <= e.release < 0.4 for e in missed)
        kinds = [e.kind for e in harness.events]
        assert kinds == ["exec_spike", "exec_spike"]  # on + off marks

    def test_storm_wraps_every_task(self):
        ex = make_executor()
        InjectionHarness(
            FaultSpec(faults=[DeadlineStorm(t_on=0.1, t_off=0.2, factor=2.0)])
        ).attach(ex)
        for task in ex.graph:
            assert isinstance(task.exec_model, _ModulatedExecTime)

    def test_burst_windows_are_spec_seed_deterministic(self):
        fault = ExecTimeBurst(task="middle", rate=5.0, duration=0.05, factor=2.0)
        h1 = InjectionHarness(FaultSpec(seed=9, faults=[fault]))
        h2 = InjectionHarness(FaultSpec(seed=9, faults=[fault]))
        h3 = InjectionHarness(FaultSpec(seed=10, faults=[fault]))
        w1 = h1._schedule_bursts(fault, 0, horizon=50.0)
        w2 = h2._schedule_bursts(fault, 0, horizon=50.0)
        w3 = h3._schedule_bursts(fault, 0, horizon=50.0)
        assert w1 == w2
        assert w1 != w3
        assert all(t_off - t_on <= 0.05 + 1e-12 for t_on, t_off in w1)


class TestSensorDropout:
    def test_releases_suppressed_inside_window(self):
        # Window edges sit between grid points: the 20 Hz releases at 0.2,
        # 0.25, 0.3 and 0.35 are swallowed, the one at 0.4 is not.
        spec = FaultSpec(faults=[SensorDropout(task="source", t_on=0.19, t_off=0.39)])
        ex, harness = run_with(spec)
        drops = [e for e in harness.events if "suppressed" in e.detail]
        assert len(drops) == 4
        assert all(0.19 <= e.t < 0.39 for e in drops)
        started = sorted(e.release for e in ex.tracer.entries if e.task == "source")
        assert all(not (0.19 <= r < 0.39) for r in started)
        # the release clock kept ticking: the grid resumes at ~0.4
        assert any(abs(r - 0.4) < 1e-6 for r in started)

    def test_non_source_target_rejected(self):
        ex = make_executor()
        harness = InjectionHarness(
            FaultSpec(faults=[SensorDropout(task="middle", t_on=0.1, t_off=0.2)])
        )
        with pytest.raises(ValueError, match="non-source"):
            harness.attach(ex)


class TestProcessorFailure:
    def test_kills_in_flight_job_and_stays_down(self):
        # Single processor; the source job released at 0.2 is mid-execution
        # (constant 2 ms) when the processor dies at 0.201.
        spec = FaultSpec(faults=[ProcessorFailure(processor=0, t_fail=0.201)])
        ex, harness = run_with(spec, n_processors=1)
        assert not ex.processors[0].available
        killed = [e for e in ex.tracer.entries if e.killed]
        assert len(killed) == 1
        assert killed[0].task == "source" and not killed[0].completed
        assert abs(killed[0].finish - 0.201) < 1e-9
        fail_events = [e for e in harness.events if e.kind == "processor_failure"]
        assert len(fail_events) == 1
        assert "killed=source" in fail_events[0].detail
        # nothing executes after the failure
        assert all(e.start < 0.201 for e in ex.tracer.entries)

    def test_recovery_restores_dispatch(self):
        spec = FaultSpec(faults=[ProcessorFailure(processor=0, t_fail=0.3, t_recover=0.6)])
        ex, harness = run_with(spec, n_processors=1)
        assert ex.processors[0].available
        assert any(e.start >= 0.6 for e in ex.tracer.entries)
        assert [e.detail.split()[0] for e in harness.events
                if e.kind == "processor_failure"] == ["fail", "recover"]

    def test_out_of_range_processor_rejected(self):
        ex = make_executor(n_processors=2)
        harness = InjectionHarness(
            FaultSpec(faults=[ProcessorFailure(processor=2, t_fail=0.1)])
        )
        with pytest.raises(ValueError, match="platform has 2"):
            harness.attach(ex)


class TestComplexitySurge:
    def test_timeline_amplified_only_in_window(self):
        ex = make_executor()
        base = ex.complexity
        InjectionHarness(
            FaultSpec(faults=[ComplexitySurge(t_on=0.2, t_off=0.4, scale=2.0, add=5.0)])
        ).attach(ex)
        assert ex.complexity(0.1) == base(0.1)
        assert ex.complexity(0.3) == base(0.3) * 2.0 + 5.0
        assert ex.complexity(0.4) == base(0.4)
