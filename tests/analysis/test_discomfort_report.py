"""Unit tests for the discomfort metric and report rendering."""

import pytest

from repro.analysis import (
    DiscomfortReport,
    discomfort,
    format_comparison,
    format_series,
    format_table,
    jerk_series,
    sparkline,
)


class TestJerk:
    def test_constant_accel_zero_jerk(self):
        accel = [(k * 0.1, 2.0) for k in range(10)]
        assert all(j == 0.0 for _, j in jerk_series(accel))

    def test_known_jerk(self):
        accel = [(0.0, 0.0), (0.5, 1.0)]
        assert jerk_series(accel) == [(0.5, 2.0)]

    def test_skips_degenerate_steps(self):
        accel = [(0.0, 0.0), (0.0, 1.0), (0.1, 1.0)]
        assert len(jerk_series(accel)) == 1


class TestDiscomfort:
    def test_empty_and_constant(self):
        assert discomfort([]).score == 0.0
        smooth = discomfort([(k * 0.1, 1.0) for k in range(20)])
        assert smooth.rms_jerk == 0.0 and smooth.exceedance_ratio == 0.0

    def test_abrupt_changes_scored(self):
        rough = [(k * 0.1, (k % 2) * 3.0) for k in range(20)]
        report = discomfort(rough)
        assert report.rms_jerk > 0.0
        assert report.exceedance_ratio == 1.0  # 30 m/s³ steps all exceed
        assert report.peak_jerk == pytest.approx(30.0)

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            discomfort([(0.0, 0.0), (0.1, 1.0)], threshold=0.0)

    def test_score_monotone_in_roughness(self):
        smooth = discomfort([(k * 0.1, 0.1 * k) for k in range(20)])
        rough = discomfort([(k * 0.1, (k % 2) * 3.0) for k in range(20)])
        assert rough.score > smooth.score


class TestReportRendering:
    def test_format_table_alignment(self):
        out = format_table("Title", ["a", "bb"], [[1, 2.34567], ["x", "y"]])
        lines = out.splitlines()
        assert lines[0] == "Title"
        assert "a" in lines[2] and "bb" in lines[2]
        assert "2.346" in out  # 4 significant digits

    def test_format_table_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table("T", ["a", "b"], [[1]])

    def test_format_series_decimation(self):
        series = [(float(k), float(k)) for k in range(100)]
        out = format_series("S", series, max_points=5)
        assert out.count("t=") <= 8
        assert "(100 samples)" in out

    def test_format_series_empty(self):
        assert "empty" in format_series("S", [])

    def test_format_series_validation(self):
        with pytest.raises(ValueError):
            format_series("S", [(0.0, 1.0)], max_points=1)

    def test_sparkline(self):
        assert sparkline([]) == ""
        flat = sparkline([1.0, 1.0, 1.0])
        assert len(set(flat)) == 1
        spiky = sparkline([0.0, 1.0, 0.0])
        assert spiky[1] != spiky[0]

    def test_format_comparison_marks_winner(self):
        out = format_comparison("T", "m", {"A": 2.0, "B": 1.0}, best="min")
        assert "B *" in out and "A *" not in out

    def test_format_comparison_max_mode(self):
        out = format_comparison("T", "m", {"A": 2.0, "B": 1.0}, best="max")
        assert "A *" in out

    def test_format_comparison_paper_column(self):
        out = format_comparison(
            "T", "m", {"A": 2.0}, paper_values={"A": 1.5}
        )
        assert "(paper)" in out and "1.5" in out

    def test_format_comparison_validation(self):
        with pytest.raises(ValueError):
            format_comparison("T", "m", {}, best="median")
