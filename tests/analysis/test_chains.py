"""Tests for end-to-end chain latency attribution."""

import pytest

from repro.analysis.chains import chain_budget, render_chain_budget
from repro.rt import RTExecutor, SimConfig, TraceRecorder
from repro.schedulers import EDFScheduler
from repro.workloads import full_task_graph
from tests.conftest import build_chain_graph


def traced_chain_run(horizon=2.0):
    g = build_chain_graph()
    ex = RTExecutor(g, EDFScheduler(), SimConfig(n_processors=2, horizon=horizon, seed=1))
    ex.tracer = TraceRecorder()
    ex.run()
    return g, ex.tracer


class TestChainBudget:
    def test_default_path_is_longest(self):
        g, tracer = traced_chain_run()
        budget = chain_budget(g, tracer)
        assert budget.path == ["source", "middle", "sink"]

    def test_stage_statistics(self):
        g, tracer = traced_chain_run()
        budget = chain_budget(g, tracer)
        for stage in budget.stages:
            assert stage.executions > 0
            assert stage.mean_exec > 0.0
            assert stage.mean_wait >= 0.0
            assert 0.0 <= stage.miss_ratio <= 1.0
        # Constant exec models: the middle stage (0.004 s) dominates.
        assert budget.bottleneck().task == "middle"

    def test_totals_add_up(self):
        g, tracer = traced_chain_run()
        budget = chain_budget(g, tracer)
        assert budget.total == pytest.approx(budget.total_wait + budget.total_exec)

    def test_explicit_path(self):
        g, tracer = traced_chain_run()
        budget = chain_budget(g, tracer, path=["middle", "sink"])
        assert budget.path == ["middle", "sink"]

    def test_unknown_path_task_raises(self):
        g, tracer = traced_chain_run()
        with pytest.raises(Exception):
            chain_budget(g, tracer, path=["nope"])

    def test_untraced_task_zero_stats(self):
        g, tracer = traced_chain_run(horizon=2.0)
        empty = TraceRecorder()
        budget = chain_budget(g, empty)
        assert all(s.executions == 0 for s in budget.stages)
        assert budget.bottleneck().mean_total == 0.0

    def test_render(self):
        g, tracer = traced_chain_run()
        out = render_chain_budget(chain_budget(g, tracer))
        assert "source → middle → sink" in out
        assert "TOTAL (path sum)" in out

    def test_full_graph_chain(self):
        g = full_task_graph()
        ex = RTExecutor(g, EDFScheduler(), SimConfig(n_processors=2, horizon=1.0, seed=0))
        ex.tracer = TraceRecorder()
        ex.run()
        budget = chain_budget(g, ex.tracer)
        # The longest chain runs from a camera/lidar source to the command.
        assert budget.path[-1] == "control_command"
        assert "sensor_fusion" in budget.path
        assert budget.bottleneck().task == "sensor_fusion"
