"""Unit and property tests for the statistics helpers."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import clip_series, mean, percentile, resample_series, rms, rms_series


class TestRMS:
    def test_empty(self):
        assert rms([]) == 0.0

    def test_known_value(self):
        assert rms([3.0, 4.0]) == pytest.approx(math.sqrt(12.5))

    def test_sign_invariant(self):
        assert rms([-2.0, 2.0]) == pytest.approx(2.0)

    def test_series_variant(self):
        assert rms_series([(0.0, 3.0), (1.0, 4.0)]) == pytest.approx(rms([3.0, 4.0]))

    @given(st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=50))
    @settings(max_examples=60)
    def test_bounds(self, values):
        r = rms(values)
        assert 0.0 <= r <= max(abs(v) for v in values) + 1e-9


class TestMean:
    def test_empty(self):
        assert mean([]) == 0.0

    def test_known(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0


class TestPercentile:
    def test_validation(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)

    def test_empty(self):
        assert percentile([], 50.0) == 0.0

    def test_single(self):
        assert percentile([5.0], 99.0) == 5.0

    def test_median(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50.0) == pytest.approx(2.5)

    def test_extremes(self):
        data = [5.0, 1.0, 3.0]
        assert percentile(data, 0.0) == 1.0
        assert percentile(data, 100.0) == 5.0

    @given(
        data=st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=30),
        q=st.floats(min_value=0.0, max_value=100.0),
    )
    @settings(max_examples=60)
    def test_within_data_range(self, data, q):
        p = percentile(data, q)
        assert min(data) - 1e-9 <= p <= max(data) + 1e-9


class TestClip:
    def test_clip(self):
        series = [(0.0, 1.0), (1.0, 2.0), (2.0, 3.0)]
        assert clip_series(series, 0.5, 2.0) == [(1.0, 2.0), (2.0, 3.0)]

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            clip_series([], 2.0, 1.0)


class TestResample:
    def test_validation(self):
        with pytest.raises(ValueError):
            resample_series([], 0.0)

    def test_empty(self):
        assert resample_series([], 0.1) == []

    def test_zero_order_hold(self):
        series = [(0.0, 1.0), (1.0, 5.0)]
        out = resample_series(series, 0.5)
        assert out == [(0.0, 1.0), (0.5, 1.0), (1.0, 5.0)]

    def test_downsampling(self):
        series = [(k * 0.1, float(k)) for k in range(11)]
        out = resample_series(series, 0.5)
        assert len(out) == 3
        assert out[1][1] == pytest.approx(5.0)
