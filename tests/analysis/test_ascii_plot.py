"""Unit tests for the ASCII line chart."""

import pytest

from repro.analysis import line_chart


class TestLineChart:
    def test_validation(self):
        with pytest.raises(ValueError):
            line_chart({"a": [(0, 0)]}, width=5)
        with pytest.raises(ValueError):
            line_chart({"a": [(0, 0)]}, height=2)

    def test_empty_series(self):
        out = line_chart({}, title="T")
        assert "no data" in out

    def test_all_empty_points(self):
        assert "no data" in line_chart({"a": []})

    def test_single_series_rendered(self):
        out = line_chart({"ramp": [(0.0, 0.0), (10.0, 1.0)]}, title="Ramp",
                         width=40, height=8)
        assert out.splitlines()[0] == "Ramp"
        assert "*" in out
        assert "*=ramp" in out

    def test_axis_labels_reflect_range(self):
        out = line_chart({"a": [(2.0, -3.0), (7.0, 5.0)]}, width=40, height=8)
        assert "5" in out and "-3" in out
        assert "2" in out and "7" in out

    def test_multiple_series_distinct_markers(self):
        out = line_chart(
            {"one": [(0, 0), (1, 1)], "two": [(0, 1), (1, 0)]},
            width=30, height=6,
        )
        assert "*=one" in out and "o=two" in out
        body = "\n".join(out.splitlines()[:-3])
        assert "*" in body and "o" in body

    def test_flat_series_centered(self):
        out = line_chart({"flat": [(0.0, 2.0), (1.0, 2.0)]}, width=30, height=7)
        # Flat data must not crash (degenerate value range is padded).
        assert "*" in out

    def test_y_label_in_footer(self):
        out = line_chart({"a": [(0, 0), (1, 1)]}, y_label="m/s", width=30, height=6)
        assert "[m/s]" in out.splitlines()[-1]

    def test_values_within_plot_bounds(self):
        # Every marker cell falls inside the grid.
        out = line_chart({"a": [(0, 0), (0.5, 100.0), (1, -100.0)]},
                         width=30, height=6)
        lines = out.splitlines()
        grid = [l for l in lines if "|" in l]
        assert all(len(l) <= 9 + 1 + 30 for l in grid)

    def test_doctest_example(self):
        art = line_chart({"ramp": [(0, 0.0), (1, 1.0)]}, width=20, height=5)
        assert "ramp" in art
