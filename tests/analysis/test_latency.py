"""Unit tests for the latency analysis module."""

import pytest

from repro.analysis import command_latencies, latency_report
from repro.vehicle.longitudinal import ACCCommand


def cmd(computed_at, sense_time):
    return ACCCommand(accel=0.0, computed_at=computed_at, sense_time=sense_time)


class TestLatency:
    def test_command_latencies(self):
        cmds = [cmd(1.0, 0.9), cmd(2.0, 1.7)]
        assert command_latencies(cmds) == pytest.approx([0.1, 0.3])

    def test_empty_report(self):
        report = latency_report([])
        assert report.count == 0 and report.mean == 0.0 and report.worst == 0.0

    def test_report_statistics(self):
        cmds = [cmd(float(k), float(k) - 0.1 * (k + 1)) for k in range(10)]
        report = latency_report(cmds)
        assert report.count == 10
        assert report.mean == pytest.approx(0.55, abs=1e-9)
        assert report.worst == pytest.approx(1.0)
        assert report.p50 <= report.p95 <= report.p99 <= report.worst

    def test_window_restriction(self):
        cmds = [cmd(1.0, 0.9), cmd(5.0, 4.0), cmd(9.0, 8.9)]
        report = latency_report(cmds, t_min=4.0, t_max=6.0)
        assert report.count == 1
        assert report.mean == pytest.approx(1.0)

    def test_as_rows_in_ms(self):
        rows = latency_report([cmd(1.0, 0.9)]).as_rows()
        labels = [r[0] for r in rows]
        assert "mean (ms)" in labels
        mean_row = next(r for r in rows if r[0] == "mean (ms)")
        assert mean_row[1] == pytest.approx(100.0)


class TestRunResultIntegration:
    def test_latency_report_from_run(self):
        from repro.experiments.runner import run_scenario
        from repro.workloads import fig13_car_following

        r = run_scenario(fig13_car_following(horizon=5.0), "EDF", seed=0)
        report = r.latency_report()
        assert report.count > 0
        assert 0.0 < report.mean < 1.0

    def test_to_dict_serializable(self):
        import json

        from repro.experiments.runner import run_scenario
        from repro.workloads import fig13_car_following, lane_keeping_loop

        r = run_scenario(fig13_car_following(horizon=5.0), "HCPerf", seed=0)
        payload = r.to_dict()
        text = json.dumps(payload)
        assert "speed_error_rms" in payload and "mean_gamma" in payload
        assert json.loads(text)["scheduler"] == "HCPerf"

        r2 = run_scenario(lane_keeping_loop(horizon=5.0), "EDF", seed=0)
        payload2 = r2.to_dict()
        json.dumps(payload2)
        assert "lateral_offset_rms" in payload2

    def test_save_writes_json_file(self, tmp_path):
        import json

        from repro.experiments.runner import run_scenario
        from repro.workloads import fig13_car_following

        r = run_scenario(fig13_car_following(horizon=5.0), "EDF", seed=0)
        out = tmp_path / "run.json"
        r.save(out)
        payload = json.loads(out.read_text())
        assert payload["scenario"] == "fig13_car_following"
