"""Unit tests for the synthetic scene generator."""

import pytest

from repro.perception import Obstacle, Scene, SceneGenerator, ramp_timeline, spike_timeline


class TestObstacle:
    def test_advance(self):
        o = Obstacle(obstacle_id=0, x=0.0, y=0.0, vx=2.0, vy=-1.0)
        o.advance(0.5)
        assert o.position() == (1.0, -0.5)

    def test_speed(self):
        o = Obstacle(obstacle_id=0, x=0, y=0, vx=3.0, vy=4.0)
        assert o.speed() == pytest.approx(5.0)


class TestTimelines:
    def test_ramp(self):
        fn = ramp_timeline(n_base=5, n_peak=25, t_start=10.0, t_ramp=10.0)
        assert fn(0.0) == 5
        assert fn(10.0) == 5
        assert fn(15.0) == pytest.approx(15.0)
        assert fn(20.0) == 25
        assert fn(99.0) == 25

    def test_ramp_validation(self):
        with pytest.raises(ValueError):
            ramp_timeline(5, 25, 0.0, 0.0)

    def test_spike(self):
        fn = spike_timeline(n_base=5, n_peak=30, t_on=10.0, t_off=20.0)
        assert fn(5.0) == 5
        assert fn(10.0) == 30
        assert fn(19.9) == 30
        assert fn(20.0) == 5

    def test_spike_validation(self):
        with pytest.raises(ValueError):
            spike_timeline(5, 30, 10.0, 5.0)


class TestGenerator:
    def test_population_follows_timeline(self):
        gen = SceneGenerator(spike_timeline(5, 20, 1.0, 2.0), seed=0)
        assert gen.at(0.0).complexity == 5
        assert gen.at(1.0).complexity == 20
        assert gen.at(2.5).complexity == 5

    def test_complexity_shortcut(self):
        gen = SceneGenerator(lambda t: 7.4, seed=0)
        assert gen.complexity(0.0) == 7.0

    def test_obstacles_move_between_queries(self):
        gen = SceneGenerator(lambda t: 3, seed=1, speed_scale=2.0)
        before = [(o.x, o.y) for o in gen.at(0.0).obstacles]
        after = [(o.x, o.y) for o in gen.at(1.0).obstacles]
        assert before != after

    def test_ids_unique_across_respawns(self):
        gen = SceneGenerator(spike_timeline(2, 6, 1.0, 2.0), seed=2)
        ids = {o.obstacle_id for o in gen.at(0.0).obstacles}
        ids |= {o.obstacle_id for o in gen.at(1.0).obstacles}
        gen.at(2.5)
        ids |= {o.obstacle_id for o in gen.at(3.0).obstacles}
        # Every spawned obstacle got a fresh id.
        assert len(ids) >= 6

    def test_validation(self):
        with pytest.raises(ValueError):
            SceneGenerator(lambda t: 1, region=0.0)
        with pytest.raises(ValueError):
            SceneGenerator(lambda t: 1, speed_scale=-1.0)

    def test_spawn_within_region(self):
        gen = SceneGenerator(lambda t: 50, region=10.0, seed=3)
        for o in gen.at(0.0).obstacles:
            assert -10.0 <= o.x <= 10.0 and -10.0 <= o.y <= 10.0

    def test_deterministic_by_seed(self):
        a = SceneGenerator(lambda t: 5, seed=7).at(0.0)
        b = SceneGenerator(lambda t: 5, seed=7).at(0.0)
        assert [(o.x, o.y) for o in a.obstacles] == [(o.x, o.y) for o in b.obstacles]
