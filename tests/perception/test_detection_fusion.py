"""Unit tests for sensor detection and configurable fusion."""

import pytest

from repro.perception import (
    CameraDetector,
    ConfigurableSensorFusion,
    Detection,
    FusionConfig,
    LidarDetector,
    Obstacle,
    Scene,
    SensorDetector,
)


def scene_with(positions, t=0.0):
    return Scene(
        t=t,
        obstacles=[
            Obstacle(obstacle_id=i, x=x, y=y) for i, (x, y) in enumerate(positions)
        ],
    )


class TestDetectors:
    def test_validation(self):
        with pytest.raises(ValueError):
            SensorDetector("s", pos_sigma=-1.0)
        with pytest.raises(ValueError):
            SensorDetector("s", miss_prob=1.0)
        with pytest.raises(ValueError):
            SensorDetector("s", max_range=0.0)

    def test_perfect_sensor_detects_everything(self):
        d = SensorDetector("perfect", pos_sigma=0.0, miss_prob=0.0, seed=0)
        dets = d.detect(scene_with([(1.0, 2.0), (-3.0, 4.0)]))
        assert len(dets) == 2
        assert dets[0].x == 1.0 and dets[0].y == 2.0
        assert dets[0].truth_id == 0

    def test_range_limit(self):
        d = SensorDetector("short", pos_sigma=0.0, miss_prob=0.0, max_range=5.0)
        dets = d.detect(scene_with([(1.0, 1.0), (100.0, 0.0)]))
        assert len(dets) == 1

    def test_miss_probability(self):
        d = SensorDetector("flaky", pos_sigma=0.0, miss_prob=0.5, seed=1)
        total = sum(len(d.detect(scene_with([(1.0, 1.0)] * 10))) for _ in range(50))
        assert 150 < total < 350  # ~250 expected

    def test_noise_applied(self):
        d = SensorDetector("noisy", pos_sigma=0.5, miss_prob=0.0, seed=2)
        det = d.detect(scene_with([(0.0, 0.0)]))[0]
        assert (det.x, det.y) != (0.0, 0.0)

    def test_default_sensors(self):
        cam, lid = CameraDetector(seed=0), LidarDetector(seed=0)
        assert cam.name == "camera" and lid.name == "lidar"
        assert lid.pos_sigma < cam.pos_sigma


class TestFusion:
    def det(self, sensor, x, y, truth=None):
        return Detection(sensor=sensor, x=x, y=y, t=0.0, truth_id=truth)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FusionConfig(gate_distance=0.0)
        with pytest.raises(ValueError):
            FusionConfig(lidar_weight=1.5)

    def test_matching_pairs_fuse(self):
        f = ConfigurableSensorFusion(FusionConfig(lidar_weight=0.8))
        cam = [self.det("camera", 0.1, 0.0, truth=7)]
        lid = [self.det("lidar", 0.0, 0.0, truth=7)]
        fused = f.fuse(cam, lid)
        assert len(fused) == 1
        assert fused[0].n_sensors == 2
        assert fused[0].x == pytest.approx(0.02)
        assert fused[0].truth_id == 7

    def test_gate_splits_distant_pairs(self):
        f = ConfigurableSensorFusion(FusionConfig(gate_distance=1.0))
        cam = [self.det("camera", 0.0, 0.0)]
        lid = [self.det("lidar", 10.0, 0.0)]
        fused = f.fuse(cam, lid)
        assert len(fused) == 2
        assert all(o.n_sensors == 1 for o in fused)

    def test_unmatched_passthrough(self):
        f = ConfigurableSensorFusion()
        cam = [self.det("camera", 0.0, 0.0), self.det("camera", 50.0, 0.0)]
        lid = [self.det("lidar", 0.1, 0.0)]
        fused = f.fuse(cam, lid)
        assert len(fused) == 2
        assert sorted(o.n_sensors for o in fused) == [1, 2]

    def test_empty_inputs(self):
        f = ConfigurableSensorFusion()
        assert f.fuse([], []) == []
        only_cam = f.fuse([self.det("camera", 1.0, 1.0)], [])
        assert len(only_cam) == 1 and only_cam[0].n_sensors == 1

    def test_association_is_nearest_pairing(self):
        f = ConfigurableSensorFusion(FusionConfig(gate_distance=5.0))
        cam = [self.det("camera", 0.0, 0.0, truth=0), self.det("camera", 10.0, 0.0, truth=1)]
        lid = [self.det("lidar", 9.9, 0.0, truth=1), self.det("lidar", 0.1, 0.0, truth=0)]
        fused = f.fuse(cam, lid)
        matched = [o for o in fused if o.n_sensors == 2]
        assert len(matched) == 2
        assert all(o.truth_id in (0, 1) for o in matched)

    def test_cost_matrix_shape(self):
        f = ConfigurableSensorFusion()
        cam = [self.det("camera", 0.0, 0.0)] * 2
        lid = [self.det("lidar", 1.0, 0.0)] * 3
        m = f.cost_matrix(cam, lid)
        assert len(m) == 2 and len(m[0]) == 3
        assert m[0][0] == pytest.approx(1.0)


class TestFuseBatch:
    def frames(self, n_frames=12, seed=0):
        cam = CameraDetector(seed=seed, miss_prob=0.1)
        lid = LidarDetector(seed=seed + 1, miss_prob=0.1)
        out = []
        for k in range(n_frames):
            scene = scene_with([(3.0 * i, 2.0 * k) for i in range(k % 7)], t=0.1 * k)
            out.append((cam.detect(scene), lid.detect(scene)))
        return out

    def test_batch_equals_per_frame_fuse(self):
        fusion = ConfigurableSensorFusion()
        frames = self.frames()
        assert fusion.fuse_batch(frames) == [fusion.fuse(c, l) for c, l in frames]

    def test_empty_and_single_sensor_frames(self):
        fusion = ConfigurableSensorFusion()
        d = Detection(x=1.0, y=2.0, t=0.0, sensor="camera")
        frames = [([], []), ([d], []), ([], [d]), ([d], [d])]
        assert fusion.fuse_batch(frames) == [fusion.fuse(c, l) for c, l in frames]

    def test_empty_batch(self):
        assert ConfigurableSensorFusion().fuse_batch([]) == []


class TestSensorDropout:
    def test_pipeline_survives_camera_blackout(self):
        """With the camera near-dead, LiDAR singletons keep the stack alive."""
        from repro.perception import (
            LidarDetector,
            PerceptionPipeline,
            SceneGenerator,
        )

        pipe = PerceptionPipeline(
            camera=SensorDetector("camera", miss_prob=0.99, seed=0),
            lidar=LidarDetector(seed=1, miss_prob=0.0),
        )
        gen = SceneGenerator(lambda t: 6, seed=2, speed_scale=0.3)
        frames = [pipe.process(gen.at(k * 0.1), 10.0) for k in range(10)]
        assert frames[-1].fused, "lidar-only detections still flow"
        assert frames[-1].n_tracks > 0
        assert all(o.n_sensors == 1 for o in frames[-1].fused) or any(
            o.n_sensors == 2 for o in frames[-1].fused
        )
