"""Unit and property tests for the Hungarian algorithm."""

import itertools
import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perception import assignment_cost, hungarian, hungarian_batch


def brute_force_cost(cost):
    """Optimal assignment cost by enumeration (square or rectangular)."""
    n_rows, n_cols = len(cost), len(cost[0])
    k = min(n_rows, n_cols)
    best = math.inf
    rows = range(n_rows)
    for row_subset in itertools.permutations(rows, k):
        for col_subset in itertools.permutations(range(n_cols), k):
            total = sum(cost[r][c] for r, c in zip(row_subset, col_subset))
            best = min(best, total)
    return best


class TestKnownCases:
    def test_identity_matrix(self):
        cost = [[0, 1, 1], [1, 0, 1], [1, 1, 0]]
        assert hungarian(cost) == [(0, 0), (1, 1), (2, 2)]

    def test_classic_example(self):
        cost = [[4, 1, 3], [2, 0, 5], [3, 2, 2]]
        pairs = hungarian(cost)
        assert assignment_cost(cost, pairs) == 5.0

    def test_single_element(self):
        assert hungarian([[3.5]]) == [(0, 0)]

    def test_two_by_two_swap(self):
        cost = [[10, 1], [1, 10]]
        assert hungarian(cost) == [(0, 1), (1, 0)]

    def test_float_costs(self):
        cost = [[0.5, 1.2], [1.1, 0.4]]
        assert hungarian(cost) == [(0, 0), (1, 1)]


class TestRectangular:
    def test_more_rows_than_cols(self):
        cost = [[1.0], [0.5], [2.0]]
        pairs = hungarian(cost)
        assert pairs == [(1, 0)]

    def test_more_cols_than_rows(self):
        cost = [[3.0, 1.0, 2.0]]
        assert hungarian(cost) == [(0, 1)]

    def test_rect_optimality_vs_brute_force(self):
        rng = random.Random(0)
        cost = [[rng.uniform(0, 10) for _ in range(4)] for _ in range(2)]
        pairs = hungarian(cost)
        assert assignment_cost(cost, pairs) == pytest.approx(brute_force_cost(cost))


class TestEdgeCases:
    def test_empty_inputs(self):
        assert hungarian([]) == []
        assert hungarian([[]]) == []

    def test_ragged_matrix_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            hungarian([[1.0, 2.0], [1.0]])

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            hungarian([[math.inf]])
        with pytest.raises(ValueError, match="finite"):
            hungarian([[math.nan]])

    def test_negative_costs_supported(self):
        cost = [[-5.0, 0.0], [0.0, -5.0]]
        assert hungarian(cost) == [(0, 0), (1, 1)]


class TestOptimality:
    @given(
        n=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_square_matches_brute_force(self, n, seed):
        rng = random.Random(seed)
        cost = [[rng.uniform(0, 100) for _ in range(n)] for _ in range(n)]
        pairs = hungarian(cost)
        assert len(pairs) == n
        assert len({r for r, _ in pairs}) == n
        assert len({c for _, c in pairs}) == n
        assert assignment_cost(cost, pairs) == pytest.approx(brute_force_cost(cost))

    def test_large_instance_runs(self):
        rng = random.Random(1)
        n = 60
        cost = [[rng.uniform(0, 1) for _ in range(n)] for _ in range(n)]
        pairs = hungarian(cost)
        assert len(pairs) == n
        # Sanity: optimal must beat the diagonal assignment.
        diag = sum(cost[i][i] for i in range(n))
        assert assignment_cost(cost, pairs) <= diag + 1e-9


class TestBatch:
    """hungarian_batch must equal per-matrix hungarian, exactly."""

    def test_empty_batch(self):
        assert hungarian_batch([]) == []

    def test_degenerate_members(self):
        assert hungarian_batch([[], [[]], [[2.0]]]) == [[], [], [(0, 0)]]

    def test_known_pair(self):
        assert hungarian_batch([[[4, 1], [2, 0]], [[1]]]) == [[(0, 1), (1, 0)], [(0, 0)]]

    def test_validation_matches_scalar(self):
        with pytest.raises(ValueError, match="equal length"):
            hungarian_batch([[[1.0, 2.0], [1.0]]])
        with pytest.raises(ValueError, match="finite"):
            hungarian_batch([[[math.nan]]])

    def test_tied_costs_break_identically(self):
        tie = [[1.0] * 5 for _ in range(5)]
        assert hungarian_batch([tie, tie]) == [hungarian(tie)] * 2

    @given(
        shapes=st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=8),
                st.integers(min_value=1, max_value=8),
            ),
            min_size=1,
            max_size=6,
        ),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_batch_equals_scalar_exactly(self, shapes, seed):
        rng = random.Random(seed)
        costs = [
            [[rng.uniform(-50, 50) for _ in range(n_cols)] for _ in range(n_rows)]
            for n_rows, n_cols in shapes
        ]
        # Exact pair equality: mixed shapes bucket by padded size, and each
        # bucket replays the scalar solver's float operations bit-for-bit.
        assert hungarian_batch(costs) == [hungarian(cost) for cost in costs]
