"""Unit tests for the planner, PID controller and end-to-end pipeline."""

import pytest

from repro.perception import (
    LongitudinalPlanner,
    PIDConfig,
    PIDController,
    PerceptionPipeline,
    PlanningConfig,
    PredictedTrajectory,
    SceneGenerator,
    SpeedController,
)


def traj(track_id, x, y, vx=0.0, t0=0.0, dt=0.25, steps=13):
    points = tuple((x + vx * k * dt, y) for k in range(steps))
    return PredictedTrajectory(track_id=track_id, t0=t0, dt=dt, points=points)


class TestPlanner:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            PlanningConfig(cruise_speed=-1.0)
        with pytest.raises(ValueError):
            PlanningConfig(corridor_halfwidth=0.0)
        with pytest.raises(ValueError):
            PlanningConfig(time_headway=-1.0)

    def test_cruise_when_clear(self):
        p = LongitudinalPlanner(PlanningConfig(cruise_speed=15.0))
        plan = p.plan([], ego_speed=10.0, t=0.0)
        assert plan.target_speed == 15.0
        assert plan.constraint_track is None

    def test_ignores_out_of_corridor(self):
        p = LongitudinalPlanner(PlanningConfig(corridor_halfwidth=2.0))
        plan = p.plan([traj(1, 20.0, 5.0)], ego_speed=10.0, t=0.0)
        assert plan.constraint_track is None

    def test_ignores_behind(self):
        p = LongitudinalPlanner()
        plan = p.plan([traj(1, -5.0, 0.0)], ego_speed=10.0, t=0.0)
        assert plan.constraint_track is None

    def test_nearest_leader_selected(self):
        p = LongitudinalPlanner()
        plan = p.plan([traj(1, 50.0, 0.0), traj(2, 20.0, 0.0)], ego_speed=10.0, t=0.0)
        assert plan.constraint_track == 2
        assert plan.gap == pytest.approx(20.0)

    def test_standstill_buffer_forces_stop(self):
        p = LongitudinalPlanner(PlanningConfig(standstill_gap=5.0))
        plan = p.plan([traj(1, 3.0, 0.0)], ego_speed=5.0, t=0.0)
        assert plan.target_speed == 0.0

    def test_intrusion_scales_toward_leader_speed(self):
        cfg = PlanningConfig(standstill_gap=5.0, time_headway=1.0, cruise_speed=20.0)
        p = LongitudinalPlanner(cfg)
        # Leader at 10 m gap moving 8 m/s; ego 10 m/s -> safe gap 15.
        plan = p.plan([traj(1, 10.0, 0.0, vx=8.0)], ego_speed=10.0, t=0.0)
        assert 0.0 < plan.target_speed < 8.0 + 1e-9

    def test_far_leader_follows_at_speed(self):
        p = LongitudinalPlanner(PlanningConfig(cruise_speed=20.0))
        plan = p.plan([traj(1, 60.0, 0.0, vx=12.0)], ego_speed=10.0, t=0.0)
        assert plan.target_speed <= 20.0
        assert plan.target_speed >= 10.0


class TestPID:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            PIDConfig(out_min=1.0, out_max=0.0)

    def test_proportional(self):
        pid = PIDController(PIDConfig(kp=2.0))
        assert pid.update(1.0, 0.0) == pytest.approx(2.0)

    def test_output_clamped(self):
        pid = PIDController(PIDConfig(kp=100.0, out_min=-1.0, out_max=1.0))
        assert pid.update(5.0, 0.0) == 1.0
        assert pid.update(-5.0, 0.1) == -1.0

    def test_integral_accumulates(self):
        pid = PIDController(PIDConfig(kp=0.0, ki=1.0, out_min=-10, out_max=10))
        pid.update(1.0, 0.0)
        out = pid.update(1.0, 1.0)
        assert out == pytest.approx(1.0)

    def test_anti_windup_freezes_integral_when_saturated(self):
        pid = PIDController(PIDConfig(kp=0.0, ki=1.0, out_min=-0.5, out_max=0.5))
        for k in range(10):
            pid.update(10.0, float(k))
        # Flip the error: recovery must be immediate, not delayed by windup.
        out = pid.update(-10.0, 10.0)
        assert out == -0.5

    def test_derivative_term(self):
        pid = PIDController(PIDConfig(kp=0.0, kd=1.0, out_min=-10, out_max=10))
        pid.update(0.0, 0.0)
        out = pid.update(1.0, 1.0)  # de/dt = 1
        assert out == pytest.approx(1.0)

    def test_time_must_be_monotone(self):
        pid = PIDController()
        pid.update(0.0, 1.0)
        with pytest.raises(ValueError):
            pid.update(0.0, 0.5)

    def test_reset(self):
        pid = PIDController(PIDConfig(kp=0.0, ki=1.0))
        pid.update(1.0, 0.0)
        pid.update(1.0, 1.0)
        pid.reset()
        assert pid.update(0.0, 2.0) == 0.0


class TestSpeedController:
    def test_sign_convention(self):
        c = SpeedController()
        assert c.accel_command(target_speed=15.0, current_speed=10.0, t=0.0) > 0
        c2 = SpeedController()
        assert c2.accel_command(target_speed=5.0, current_speed=10.0, t=0.0) < 0


class TestPipeline:
    def test_full_frame(self):
        gen = SceneGenerator(lambda t: 8, seed=0)
        pipe = PerceptionPipeline()
        frame = pipe.process(gen.at(0.0), ego_speed=10.0)
        assert len(frame.camera) <= 8 and len(frame.lidar) <= 8
        assert frame.fused
        assert set(frame.stage_seconds) == {
            "camera", "lidar", "fusion", "tracking", "prediction", "planning", "control",
        }
        assert all(v >= 0.0 for v in frame.stage_seconds.values())

    def test_tracks_confirm_over_frames(self):
        gen = SceneGenerator(lambda t: 5, seed=1, speed_scale=0.5)
        pipe = PerceptionPipeline()
        frames = [pipe.process(gen.at(k * 0.1), 10.0) for k in range(6)]
        assert frames[-1].n_tracks > 0

    def test_plan_reacts_to_blocker(self):
        from repro.perception import Obstacle, Scene

        pipe = PerceptionPipeline()
        # A stationary obstacle dead ahead in the corridor.
        blocked = Scene(t=0.0, obstacles=[Obstacle(0, 12.0, 0.0)])
        for k in range(5):
            blocked.t = k * 0.1
            frame = pipe.process(blocked, ego_speed=10.0)
        assert frame.plan.target_speed < pipe.planner.config.cruise_speed
        assert frame.accel_command < 0.0
