"""Cross-validation of the from-scratch Hungarian against SciPy's solver."""

import random

import pytest

scipy_optimize = pytest.importorskip("scipy.optimize")

from repro.perception import assignment_cost, hungarian


@pytest.mark.parametrize("n,m,seed", [
    (1, 1, 0), (3, 3, 1), (5, 5, 2), (8, 8, 3), (12, 12, 4),
    (20, 20, 5), (3, 7, 6), (7, 3, 7), (1, 10, 8), (15, 4, 9),
])
def test_matches_scipy_linear_sum_assignment(n, m, seed):
    rng = random.Random(seed)
    cost = [[rng.uniform(-50.0, 50.0) for _ in range(m)] for _ in range(n)]
    ours = assignment_cost(cost, hungarian(cost))
    rows, cols = scipy_optimize.linear_sum_assignment(cost)
    theirs = sum(cost[r][c] for r, c in zip(rows, cols))
    assert ours == pytest.approx(theirs, abs=1e-9)


def test_many_random_square_instances():
    rng = random.Random(42)
    for trial in range(30):
        n = rng.randint(2, 15)
        cost = [[rng.uniform(0.0, 100.0) for _ in range(n)] for _ in range(n)]
        ours = assignment_cost(cost, hungarian(cost))
        rows, cols = scipy_optimize.linear_sum_assignment(cost)
        theirs = sum(cost[r][c] for r, c in zip(rows, cols))
        assert ours == pytest.approx(theirs, abs=1e-9), f"trial {trial}, n={n}"


def test_degenerate_equal_costs():
    cost = [[1.0] * 4 for _ in range(4)]
    ours = assignment_cost(cost, hungarian(cost))
    assert ours == pytest.approx(4.0)
