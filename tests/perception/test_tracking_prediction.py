"""Unit tests for Kalman tracking and constant-velocity prediction."""

import pytest

from repro.perception import (
    ConstantVelocityPredictor,
    FusedObstacle,
    KalmanTrack,
    MultiObjectTracker,
    TrackerConfig,
)


def obs(x, y, t=0.0, truth=None):
    return FusedObstacle(x=x, y=y, t=t, n_sensors=2, truth_id=truth)


class TestKalmanTrack:
    def test_initial_state(self):
        tr = KalmanTrack(1.0, 2.0, t=0.0)
        assert tr.position() == (1.0, 2.0)
        assert tr.velocity() == (0.0, 0.0)
        assert tr.hits == 1

    def test_predict_advances_with_velocity(self):
        tr = KalmanTrack(0.0, 0.0, t=0.0)
        tr.state[2] = 2.0  # vx
        x, y = tr.predict(1.0)
        assert x == pytest.approx(2.0)

    def test_update_pulls_toward_measurement(self):
        tr = KalmanTrack(0.0, 0.0, t=0.0)
        tr.update(1.0, 0.0)
        assert 0.0 < tr.position()[0] <= 1.0

    def test_velocity_estimated_from_motion(self):
        tr = KalmanTrack(0.0, 0.0, t=0.0)
        for k in range(1, 30):
            t = k * 0.1
            tr.predict(t)
            tr.update(2.0 * t, 0.0)  # moving at 2 m/s in x
        vx, vy = tr.velocity()
        assert vx == pytest.approx(2.0, rel=0.2)
        assert abs(vy) < 0.2
        assert tr.speed() == pytest.approx(2.0, rel=0.2)


class TestTracker:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            TrackerConfig(gate_distance=0.0)
        with pytest.raises(ValueError):
            TrackerConfig(max_misses=0)

    def test_track_created_and_confirmed(self):
        trk = MultiObjectTracker(TrackerConfig(min_hits=2))
        assert trk.step([obs(0.0, 0.0)], 0.0) == []  # 1 hit: unconfirmed
        confirmed = trk.step([obs(0.1, 0.0, t=0.1)], 0.1)
        assert len(confirmed) == 1

    def test_track_id_stable_across_frames(self):
        trk = MultiObjectTracker()
        trk.step([obs(0.0, 0.0)], 0.0)
        tid = trk.tracks[0].track_id
        trk.step([obs(0.2, 0.0, t=0.1)], 0.1)
        assert trk.tracks[0].track_id == tid

    def test_track_dies_after_max_misses(self):
        trk = MultiObjectTracker(TrackerConfig(max_misses=2))
        trk.step([obs(0.0, 0.0)], 0.0)
        for k in range(1, 4):
            trk.step([], k * 0.1)
        assert trk.tracks == []

    def test_two_targets_tracked_separately(self):
        trk = MultiObjectTracker(TrackerConfig(min_hits=1))
        for k in range(5):
            t = k * 0.1
            confirmed = trk.step([obs(0.0 + t, 0.0, t=t), obs(20.0 - t, 5.0, t=t)], t)
        assert len(confirmed) == 2

    def test_gate_prevents_wild_association(self):
        trk = MultiObjectTracker(TrackerConfig(gate_distance=1.0, min_hits=1))
        trk.step([obs(0.0, 0.0)], 0.0)
        trk.step([obs(50.0, 0.0, t=0.1)], 0.1)
        # The distant measurement spawned a new track instead of teleporting
        # the old one.
        assert len(trk.tracks) == 2


class TestPredictor:
    def test_validation(self):
        with pytest.raises(ValueError):
            ConstantVelocityPredictor(horizon=0.0)
        with pytest.raises(ValueError):
            ConstantVelocityPredictor(horizon=1.0, dt=2.0)

    def test_extrapolates_velocity(self):
        tr = KalmanTrack(1.0, 0.0, t=0.0)
        tr.state[2] = 3.0
        pred = ConstantVelocityPredictor(horizon=2.0, dt=0.5).predict([tr], 0.0)[0]
        assert pred.position_at(1.0)[0] == pytest.approx(4.0)

    def test_clamps_past_horizon(self):
        tr = KalmanTrack(0.0, 0.0, t=0.0)
        tr.state[2] = 1.0
        pred = ConstantVelocityPredictor(horizon=1.0, dt=0.5).predict([tr], 0.0)[0]
        assert pred.position_at(100.0)[0] == pytest.approx(1.0)

    def test_before_t0_returns_start(self):
        tr = KalmanTrack(5.0, 0.0, t=0.0)
        pred = ConstantVelocityPredictor().predict([tr], 10.0)[0]
        assert pred.position_at(0.0)[0] == pytest.approx(5.0)

    def test_interpolates_between_steps(self):
        tr = KalmanTrack(0.0, 0.0, t=0.0)
        tr.state[2] = 2.0
        pred = ConstantVelocityPredictor(horizon=1.0, dt=0.5).predict([tr], 0.0)[0]
        assert pred.position_at(0.25)[0] == pytest.approx(0.5)
