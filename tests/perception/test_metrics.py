"""Unit tests for the tracking-quality metrics."""

import pytest

from repro.perception import (
    CameraDetector,
    LidarDetector,
    Obstacle,
    PerceptionPipeline,
    Scene,
    SceneGenerator,
    TrackingEvaluator,
)
from repro.perception.tracking import KalmanTrack


def truth_scene(positions, t=0.0):
    return Scene(
        t=t,
        obstacles=[Obstacle(i, x, y) for i, (x, y) in enumerate(positions)],
    )


def track_at(x, y, t=0.0):
    return KalmanTrack(x, y, t=t)


class TestEvaluator:
    def test_validation(self):
        with pytest.raises(ValueError):
            TrackingEvaluator(gate=0.0)

    def test_perfect_match(self):
        ev = TrackingEvaluator()
        frame = ev.observe(truth_scene([(0, 0), (10, 10)]),
                           [track_at(0, 0), track_at(10, 10)])
        assert frame.matched == 2
        assert frame.recall == 1.0 and frame.precision == 1.0
        assert max(frame.position_errors) == pytest.approx(0.0)

    def test_missed_truth_lowers_recall(self):
        ev = TrackingEvaluator()
        frame = ev.observe(truth_scene([(0, 0), (50, 50)]), [track_at(0, 0)])
        assert frame.matched == 1
        assert frame.recall == pytest.approx(0.5)
        assert frame.precision == 1.0

    def test_false_track_lowers_precision(self):
        ev = TrackingEvaluator()
        frame = ev.observe(truth_scene([(0, 0)]),
                           [track_at(0, 0), track_at(99, 99)])
        assert frame.precision == pytest.approx(0.5)

    def test_gate_prevents_distant_matches(self):
        ev = TrackingEvaluator(gate=1.0)
        frame = ev.observe(truth_scene([(0, 0)]), [track_at(5, 0)])
        assert frame.matched == 0

    def test_empty_frames(self):
        ev = TrackingEvaluator()
        frame = ev.observe(truth_scene([]), [])
        assert frame.recall == 1.0 and frame.precision == 1.0

    def test_id_switch_detected(self):
        ev = TrackingEvaluator()
        a, b = track_at(0, 0), track_at(10, 0)
        ev.observe(truth_scene([(0, 0)]), [a])
        # The same truth obstacle is now explained by a different track.
        frame = ev.observe(truth_scene([(10, 0)]), [b])
        assert frame.id_switches == 1

    def test_no_switch_when_track_persists(self):
        ev = TrackingEvaluator()
        a = track_at(0, 0)
        ev.observe(truth_scene([(0, 0)]), [a])
        a.state[0] = 1.0
        frame = ev.observe(truth_scene([(1.0, 0)]), [a])
        assert frame.id_switches == 0

    def test_summary_aggregates(self):
        ev = TrackingEvaluator()
        ev.observe(truth_scene([(0, 0)]), [track_at(0.5, 0)])
        ev.observe(truth_scene([(0, 0)]), [track_at(0.5, 0)])
        q = ev.summary()
        assert q.frames == 2
        assert q.rmse == pytest.approx(0.5)
        assert q.mean_recall == 1.0

    def test_empty_summary(self):
        q = TrackingEvaluator().summary()
        assert q.frames == 0 and q.rmse == 0.0


class TestPipelineQuality:
    def test_pipeline_tracks_well_on_slow_scene(self):
        """End-to-end quality gate: the stack tracks a mild scene."""
        gen = SceneGenerator(lambda t: 6, seed=0, speed_scale=0.5)
        pipe = PerceptionPipeline(
            camera=CameraDetector(seed=1, miss_prob=0.02),
            lidar=LidarDetector(seed=2, miss_prob=0.01),
        )
        ev = TrackingEvaluator(gate=3.0)
        for k in range(30):
            scene = gen.at(k * 0.1)
            frame = pipe.process(scene, ego_speed=10.0)
            if k >= 5:  # let tracks confirm
                ev.observe(scene, pipe.tracker.confirmed())
        q = ev.summary()
        assert q.mean_recall > 0.8
        assert q.mean_precision > 0.8
        assert q.rmse < 1.0
