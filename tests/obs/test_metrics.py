"""Metrics registry: counters, gauges and fixed-bucket histograms."""

import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_monotonic(self):
        c = Counter("jobs")
        c.inc()
        c.inc(3)
        assert c.value == 4
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_to_dict(self):
        c = Counter("jobs")
        c.inc(2)
        assert c.to_dict() == {"type": "counter", "value": 2}


class TestGauge:
    def test_last_value_wins(self):
        g = Gauge("rate")
        assert g.value is None
        g.set(10.0)
        g.set(12.5)
        assert g.value == 12.5
        assert g.to_dict() == {"type": "gauge", "value": 12.5}


class TestHistogram:
    def test_bucket_assignment(self):
        h = Histogram("lat", edges=[0.01, 0.1, 1.0])
        for v in (0.005, 0.01, 0.05, 0.5, 2.0):
            h.observe(v)
        # bisect_left: a value equal to an edge lands in that edge's bucket.
        assert h.counts == [2, 1, 1, 1]
        assert h.total == 5
        assert h.sum == pytest.approx(2.565)
        assert h.mean == pytest.approx(0.513)

    def test_edges_must_increase(self):
        with pytest.raises(ValueError):
            Histogram("bad", edges=[0.1, 0.1])
        with pytest.raises(ValueError):
            Histogram("bad", edges=[])

    def test_quantile_bound(self):
        h = Histogram("lat", edges=[1.0, 2.0, 4.0])
        for v in (0.5, 0.5, 1.5, 3.0):
            h.observe(v)
        assert h.quantile_bound(0.5) == 1.0
        assert h.quantile_bound(1.0) == 4.0
        assert Histogram("empty", edges=[1.0]).quantile_bound(0.5) is None
        h.observe(100.0)  # overflow bucket
        assert h.quantile_bound(1.0) is None
        with pytest.raises(ValueError):
            h.quantile_bound(1.5)

    def test_to_dict_roundtrips_counts(self):
        h = Histogram("lat", edges=[1.0])
        h.observe(0.5)
        d = h.to_dict()
        assert d["counts"] == [1, 0] and d["total"] == 1


class TestRegistry:
    def test_create_on_first_touch_stable_identity(self):
        reg = MetricsRegistry()
        a = reg.counter("jobs")
        b = reg.counter("jobs")
        assert a is b
        assert "jobs" in reg and reg["jobs"] is a

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_histogram_edge_conflict_raises(self):
        reg = MetricsRegistry()
        reg.histogram("h", edges=[1.0, 2.0])
        reg.histogram("h", edges=[1.0, 2.0])  # same edges: fine
        with pytest.raises(ValueError):
            reg.histogram("h", edges=[1.0, 3.0])

    def test_snapshot_is_name_sorted(self):
        reg = MetricsRegistry()
        reg.counter("zeta").inc()
        reg.gauge("alpha").set(1.0)
        reg.histogram("mid", edges=[1.0]).observe(0.5)
        assert list(reg.to_dict()) == ["alpha", "mid", "zeta"]
        text = reg.render_text()
        assert "alpha" in text and "counter" in text and "histogram" in text


class TestThreadSafety:
    """The service updates instruments from handler and worker threads."""

    def test_concurrent_updates_are_not_lost(self):
        import threading

        reg = MetricsRegistry()
        n_threads, n_ops = 8, 2000

        def hammer():
            for i in range(n_ops):
                reg.counter("jobs").inc()
                reg.gauge("busy").set(float(i))
                reg.histogram("latency", edges=[0.5]).observe(i % 2)

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert reg["jobs"].value == n_threads * n_ops
        hist = reg["latency"]
        assert hist.total == n_threads * n_ops
        assert sum(hist.counts) == hist.total

    def test_concurrent_create_yields_one_instrument(self):
        import threading

        reg = MetricsRegistry()
        seen = []
        barrier = threading.Barrier(8)

        def create():
            barrier.wait()
            seen.append(reg.counter("races"))

        threads = [threading.Thread(target=create) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(c is seen[0] for c in seen)
