"""Each invariant of the catalog fires on a targeted bad recording."""

from repro.obs.events import (
    DropEvent,
    GammaEvent,
    RateEvent,
    ReleaseEvent,
    SpanEvent,
    UnresolvedEvent,
    WindowEvent,
)
from repro.obs.invariants import INVARIANTS, check_recording
from repro.obs.recorder import Recorder


def codes(violations):
    return sorted({v.code for v in violations})


def span(task="a", cycle=0, proc=0, start=0.0, finish=0.01, release=0.0,
         deadline=0.1, outcome="complete"):
    return SpanEvent(t=finish, task=task, cycle=cycle, processor=proc,
                     start=start, finish=finish, release=release,
                     deadline=deadline, outcome=outcome)


def recording(*events):
    rec = Recorder()
    for e in events:
        rec.emit(e)
    return rec


class TestCatalog:
    def test_catalog_is_complete(self):
        assert sorted(INVARIANTS) == [f"OBS00{i}" for i in range(1, 10)]
        for code, (description, fn) in INVARIANTS.items():
            assert description and callable(fn)

    def test_empty_recording_is_clean(self):
        assert check_recording(Recorder()) == []


class TestOBS001Overlap:
    def test_overlap_on_one_processor_fires(self):
        rec = recording(
            span(cycle=0, start=0.0, finish=0.02),
            span(cycle=1, start=0.01, finish=0.03, release=0.01),
        )
        assert "OBS001" in codes(INVARIANTS["OBS001"][1](rec))

    def test_same_window_on_two_processors_is_fine(self):
        rec = recording(
            span(cycle=0, proc=0, start=0.0, finish=0.02),
            span(cycle=1, proc=1, start=0.0, finish=0.02, release=0.0),
        )
        assert INVARIANTS["OBS001"][1](rec) == []


class TestOBS002TimeOrder:
    def test_dispatch_before_release_fires(self):
        rec = recording(span(start=0.0, release=0.5, finish=0.6, deadline=1.0))
        assert "OBS002" in codes(INVARIANTS["OBS002"][1](rec))

    def test_backwards_stream_fires(self):
        rec = recording(
            GammaEvent(t=1.0), GammaEvent(t=0.5)
        )
        assert "OBS002" in codes(INVARIANTS["OBS002"][1](rec))


class TestOBS003Bijection:
    def test_unresolved_release_fires(self):
        rec = recording(ReleaseEvent(t=0.0, task="a", cycle=0, deadline=0.1))
        out = INVARIANTS["OBS003"][1](rec)
        assert "OBS003" in codes(out) and "nothing" in str(out[0])

    def test_double_resolution_fires(self):
        rec = recording(
            ReleaseEvent(t=0.0, task="a", cycle=0, deadline=0.1),
            span(outcome="complete"),
            DropEvent(t=0.05, task="a", cycle=0, reason="expired"),
        )
        assert "OBS003" in codes(INVARIANTS["OBS003"][1](rec))

    def test_resolution_without_release_fires(self):
        rec = recording(span())
        assert "OBS003" in codes(INVARIANTS["OBS003"][1](rec))

    def test_each_resolution_kind_accepted(self):
        rec = recording(
            ReleaseEvent(t=0.0, task="a", cycle=0, deadline=0.1),
            span(cycle=0),
            ReleaseEvent(t=0.0, task="a", cycle=1, deadline=0.1),
            DropEvent(t=0.05, task="a", cycle=1, reason="evicted"),
            ReleaseEvent(t=0.0, task="a", cycle=2, deadline=0.1),
            UnresolvedEvent(t=1.0, task="a", cycle=2, state="ready"),
        )
        assert INVARIANTS["OBS003"][1](rec) == []

    def test_truncated_recording_skipped(self):
        rec = Recorder(capacity=1)
        rec.emit(ReleaseEvent(t=0.0, task="a", cycle=0, deadline=0.1))
        rec.emit(ReleaseEvent(t=0.1, task="a", cycle=1, deadline=0.2))
        assert rec.truncated
        assert INVARIANTS["OBS003"][1](rec) == []


class TestOBS004OutcomeDeadline:
    def test_late_complete_fires(self):
        rec = recording(span(finish=0.2, deadline=0.1, outcome="complete"))
        assert "OBS004" in codes(INVARIANTS["OBS004"][1](rec))

    def test_early_miss_fires(self):
        rec = recording(span(finish=0.05, deadline=0.1, outcome="miss"))
        assert "OBS004" in codes(INVARIANTS["OBS004"][1](rec))

    def test_kill_is_exempt(self):
        rec = recording(span(finish=0.05, deadline=0.1, outcome="kill"))
        assert INVARIANTS["OBS004"][1](rec) == []


class TestOBS005GammaBounds:
    def test_negative_gamma_fires(self):
        rec = recording(GammaEvent(t=0.0, gamma=-0.01, gamma_max=0.02))
        assert "OBS005" in codes(INVARIANTS["OBS005"][1](rec))

    def test_gamma_above_gamma_max_fires(self):
        rec = recording(GammaEvent(t=0.0, gamma=0.03, gamma_max=0.02))
        assert "OBS005" in codes(INVARIANTS["OBS005"][1](rec))

    def test_meta_cap_enforced(self):
        rec = recording(GammaEvent(t=0.0, gamma=0.05, gamma_max=0.06))
        rec.meta["gamma_cap"] = 0.02
        assert "OBS005" in codes(INVARIANTS["OBS005"][1](rec))


class TestOBS006OverloadFlags:
    def test_flag_without_infeasibility_fires(self):
        rec = recording(GammaEvent(t=0.0, gamma=0.0, gamma_max=0.02, overloaded=True))
        assert "OBS006" in codes(INVARIANTS["OBS006"][1](rec))

    def test_overloaded_with_nonzero_gamma_fires(self):
        rec = recording(GammaEvent(t=0.0, gamma=0.01, gamma_max=None, overloaded=True))
        assert "OBS006" in codes(INVARIANTS["OBS006"][1](rec))

    def test_proper_overload_is_clean(self):
        rec = recording(GammaEvent(t=0.0, gamma=0.0, gamma_max=None, overloaded=True))
        assert INVARIANTS["OBS006"][1](rec) == []


class TestOBS007WindowTiling:
    def test_gap_between_windows_fires(self):
        rec = recording(
            WindowEvent(t=0.5, t_start=0.0),
            WindowEvent(t=1.5, t_start=1.0),  # gap [0.5, 1.0)
        )
        assert "OBS007" in codes(INVARIANTS["OBS007"][1](rec))

    def test_backwards_window_fires(self):
        rec = recording(WindowEvent(t=0.2, t_start=0.5))
        assert "OBS007" in codes(INVARIANTS["OBS007"][1](rec))

    def test_tiling_windows_clean(self):
        rec = recording(
            WindowEvent(t=0.5, t_start=0.0), WindowEvent(t=1.0, t_start=0.5)
        )
        assert INVARIANTS["OBS007"][1](rec) == []


class TestOBS008WindowCounts:
    def test_counter_mismatch_fires(self):
        rec = recording(
            ReleaseEvent(t=0.0, task="a", cycle=0, deadline=0.1),
            span(finish=0.01),
            WindowEvent(t=0.5, t_start=0.0, completed=5, missed=0),
        )
        assert "OBS008" in codes(INVARIANTS["OBS008"][1](rec))

    def test_boundary_event_gets_slack(self):
        # A span finishing exactly at the final window close may be counted
        # on either side of the boundary (heap tie-break) — both tallies are
        # accepted.
        for counted in (0, 1):
            rec = recording(
                ReleaseEvent(t=0.0, task="a", cycle=0, deadline=1.0),
                span(finish=0.5, deadline=1.0),
                WindowEvent(t=0.5, t_start=0.0, completed=counted, missed=0),
            )
            assert INVARIANTS["OBS008"][1](rec) == []

    def test_post_window_events_ignored(self):
        rec = recording(
            ReleaseEvent(t=0.0, task="a", cycle=0, deadline=1.0),
            WindowEvent(t=0.5, t_start=0.0, completed=0, missed=0),
            span(start=0.6, finish=0.7, deadline=1.0),
        )
        assert INVARIANTS["OBS008"][1](rec) == []


class TestOBS009RateRanges:
    def _meta(self, rec):
        rec.meta["tasks"] = [
            {"name": "src", "rate": 20.0, "rate_range": [10.0, 50.0]},
            {"name": "fixed", "rate": 5.0, "rate_range": None},
        ]

    def test_out_of_range_fires(self):
        rec = recording(RateEvent(t=0.5, task="src", rate=60.0))
        self._meta(rec)
        assert "OBS009" in codes(INVARIANTS["OBS009"][1](rec))

    def test_unknown_task_fires(self):
        rec = recording(RateEvent(t=0.5, task="ghost", rate=10.0))
        self._meta(rec)
        assert "OBS009" in codes(INVARIANTS["OBS009"][1](rec))

    def test_in_range_and_rangeless_clean(self):
        rec = recording(
            RateEvent(t=0.5, task="src", rate=50.0),
            RateEvent(t=0.5, task="fixed", rate=99.0),
        )
        self._meta(rec)
        assert INVARIANTS["OBS009"][1](rec) == []


def test_check_recording_aggregates_all_codes():
    rec = recording(
        span(start=0.0, release=0.5, finish=0.6, deadline=0.1, outcome="complete"),
        GammaEvent(t=0.7, gamma=-1.0, gamma_max=None, overloaded=False),
    )
    found = codes(check_recording(rec))
    # one bad span + one bad gamma event trips several families at once
    assert {"OBS002", "OBS003", "OBS004", "OBS005", "OBS006"} <= set(found)
