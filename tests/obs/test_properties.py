"""Invariant-checker property tests over randomized recorded runs.

Every (seed, scheduler, processor-count) cell runs a randomized small
workload with the recorder attached and asserts the full invariant catalog
stays clean.  All randomness is drawn from per-case ``random.Random(seed)``
streams — fixed seed lists, no global RNG — so a red cell reproduces from
its test id alone.
"""

import random

import pytest

from repro.faults import (
    ExecTimeSpike,
    FaultSpec,
    ProcessorFailure,
    SensorDropout,
)
from repro.faults.harness import InjectionHarness
from repro.obs.invariants import check_recording
from repro.obs.recorder import Recorder
from repro.rt import (
    ConstantExecTime,
    RTExecutor,
    SimConfig,
    TaskGraph,
    TaskSpec,
    UniformExecTime,
)
from repro.schedulers import make_scheduler

#: The fixed seed list every property cell draws its workload from.
SEEDS = (0, 1, 7, 23, 101)

SCHEDULERS = ("EDF", "HCPerf", "HPF")

PROCESSOR_COUNTS = (1, 2, 4)


def random_workload(rng: random.Random) -> TaskGraph:
    """A random chain or diamond graph with randomized costs/deadlines."""
    rate = rng.choice([10.0, 20.0, 40.0])
    scale = rng.uniform(0.3, 3.0)
    deadline = rng.choice([0.04, 0.08, 0.15])
    c = 0.004 * scale
    g = TaskGraph()
    g.add_task(
        TaskSpec(
            "src",
            priority=4,
            relative_deadline=deadline,
            exec_model=UniformExecTime(0.5 * c, c),
            rate=rate,
            rate_range=(5.0, 50.0),
        )
    )
    if rng.random() < 0.5:
        for name in ("left", "right"):
            g.add_task(
                TaskSpec(name, priority=3, relative_deadline=deadline,
                         exec_model=ConstantExecTime(c))
            )
            g.add_edge("src", name)
        g.add_task(
            TaskSpec("sink", priority=1, relative_deadline=deadline,
                     exec_model=ConstantExecTime(0.5 * c))
        )
        g.add_edge("left", "sink")
        g.add_edge("right", "sink")
    else:
        g.add_task(
            TaskSpec("mid", priority=2, relative_deadline=deadline,
                     exec_model=ConstantExecTime(c))
        )
        g.add_task(
            TaskSpec("sink", priority=1, relative_deadline=deadline,
                     exec_model=ConstantExecTime(0.5 * c))
        )
        g.add_edge("src", "mid")
        g.add_edge("mid", "sink")
    g.validate()
    return g


def record_run(graph, scheduler_name, n_processors, seed) -> Recorder:
    executor = RTExecutor(
        graph,
        make_scheduler(scheduler_name),
        SimConfig(
            n_processors=n_processors,
            horizon=1.5,
            coordination_period=0.25,
            seed=seed,
        ),
    )
    rec = Recorder()
    executor.recorder = rec
    executor.run()
    return rec


@pytest.mark.parametrize("n_processors", PROCESSOR_COUNTS)
@pytest.mark.parametrize("scheduler", SCHEDULERS)
@pytest.mark.parametrize("seed", SEEDS)
def test_random_runs_satisfy_all_invariants(seed, scheduler, n_processors):
    rng = random.Random(seed * 1009 + n_processors)
    rec = record_run(random_workload(rng), scheduler, n_processors, seed)
    assert rec.events, "instrumented run produced no events"
    violations = check_recording(rec)
    assert violations == [], "\n".join(str(v) for v in violations)


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_overloaded_runs_stay_sound(scheduler):
    """Execution times far above the deadline: drops/misses/overload flags
    must still reconcile (OBS003/OBS006/OBS008 under real pressure)."""
    g = TaskGraph()
    g.add_task(
        TaskSpec("src", priority=2, relative_deadline=0.02,
                 exec_model=ConstantExecTime(0.03),
                 rate=40.0, rate_range=(10.0, 50.0))
    )
    g.add_task(
        TaskSpec("sink", priority=1, relative_deadline=0.02,
                 exec_model=ConstantExecTime(0.03))
    )
    g.add_edge("src", "sink")
    g.validate()
    rec = record_run(g, scheduler, 1, seed=0)
    violations = check_recording(rec)
    assert violations == [], "\n".join(str(v) for v in violations)
    outcomes = {s.outcome for s in rec.spans()} | {
        e.kind for e in rec.events if e.kind in ("drop",)
    }
    assert outcomes - {"complete"}, "overload scenario produced no pressure"


def scaled_canonical_suite() -> FaultSpec:
    """The canonical three-fault workout, time-compressed to a short run."""
    return FaultSpec(
        name="canonical-scaled",
        faults=[
            ExecTimeSpike(task="sensor_fusion", t_on=1.0, t_off=2.5, factor=2.5),
            SensorDropout(task="image_preprocessing", t_on=3.0, t_off=3.6),
            ProcessorFailure(processor=0, t_fail=4.2, t_recover=4.8),
        ],
    )


@pytest.mark.parametrize("scheduler", ("EDF", "HCPerf"))
def test_canonical_fault_suite_runs_stay_sound(scheduler):
    from repro.experiments.runner import run_scenario
    from repro.workloads.scenarios import motivation_red_light

    harness = InjectionHarness(scaled_canonical_suite())
    rec = Recorder()
    run_scenario(
        motivation_red_light(horizon=6.0),
        scheduler,
        seed=1,
        recorder=rec,
        before_run=harness.attach,
    )
    violations = check_recording(rec)
    assert violations == [], "\n".join(str(v) for v in violations)
    # every injected fault left its marker on the shared timeline
    marks = {e.fault for e in rec.events if e.kind == "fault"}
    assert {"exec_spike", "sensor_dropout", "processor_failure"} <= marks
    # the processor kill (if a job was in flight) shows up as a kill span or
    # at minimum the failure marker bracketed by recovery
    details = [e.detail for e in rec.events if e.kind == "fault"]
    assert any("fail" in d for d in details)
    assert any("recover" in d for d in details)


def test_recorder_attachment_does_not_change_the_run():
    """Recorder-on and recorder-off runs produce identical metrics."""
    rng = random.Random(99)
    graph_a = random_workload(rng)
    rng = random.Random(99)
    graph_b = random_workload(rng)
    cfg = SimConfig(n_processors=2, horizon=1.5, coordination_period=0.25, seed=5)

    plain = RTExecutor(graph_a, make_scheduler("HCPerf"), cfg)
    plain_metrics = plain.run()

    recorded = RTExecutor(graph_b, make_scheduler("HCPerf"), cfg)
    recorded.recorder = Recorder()
    recorded_metrics = recorded.run()

    assert plain_metrics.miss_ratio_series() == recorded_metrics.miss_ratio_series()
    assert plain_metrics.overall_miss_ratio == recorded_metrics.overall_miss_ratio
    assert plain.rates() == recorded.rates()
    assert plain.utilization() == recorded.utilization()


# ---------------------------------------------------------------------------
# Typed platforms and activation modes (OBS001-OBS009 must stay clean)
# ---------------------------------------------------------------------------

TYPED_PROFILES = ("2xCPU", "1xCPU+1xGPU@2", "2xCPU+1xGPU@3")

ACTIVATIONS = ("all-inputs", "newest-only")


def typed_workload(rng: random.Random, profile: str, activation: str) -> TaskGraph:
    """A random workload retargeted onto a typed platform.

    On GPU-bearing profiles one middle stage becomes GPU-affine (with a
    speedup override); the sink gets the requested activation mode.
    """
    g = random_workload(rng)
    names = {t.name for t in g}
    if "GPU" in profile:
        target = "mid" if "mid" in names else "left"
        g.task(target).affinity = frozenset({"GPU"})
        g.task(target).speedup = {"GPU": 2.0}
    g.task("sink").activation = activation
    return g


@pytest.mark.parametrize("profile", TYPED_PROFILES)
@pytest.mark.parametrize("activation", ACTIVATIONS)
@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_typed_runs_satisfy_all_invariants(scheduler, activation, profile):
    from repro.rt import SimConfig
    from repro.schedulers import make_scheduler
    from repro.rt.executor import RTExecutor

    rng = random.Random(len(profile) * 31 + len(activation))
    graph = typed_workload(rng, profile, activation)
    executor = RTExecutor(
        graph,
        make_scheduler(scheduler),
        SimConfig(processor_profile=profile, horizon=1.5,
                  coordination_period=0.25, seed=11),
    )
    rec = Recorder()
    executor.recorder = rec
    executor.run()
    assert rec.events, "instrumented run produced no events"
    violations = check_recording(rec)
    assert violations == [], "\n".join(str(v) for v in violations)
    # typed platforms tag every span with its unit; identity ones never do
    units = {s.unit for s in rec.spans()}
    if profile == "2xCPU":
        assert units <= {None}
        assert "processor_profile" not in rec.meta
    else:
        assert None not in units and units
        assert rec.meta["processor_profile"] == profile
