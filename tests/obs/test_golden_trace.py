"""Golden-trace regression: byte-stable exports and a pre-PR baseline.

Three independent pins:

* the canonical car-following recording serializes to exactly the bytes in
  ``tests/obs/golden/motivation_hcperf_s0_h2.jsonl``;
* its Chrome export stays schema-valid and the JSONL round-trips losslessly;
* the recorder-disabled CLI path still prints byte-identical JSON to the
  goldens captured before the observability layer existed.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.experiments.runner import run_scenario
from repro.obs.export import (
    from_jsonl,
    to_chrome_trace,
    to_jsonl,
    validate_chrome_trace,
)
from repro.obs.invariants import check_recording
from repro.obs.recorder import Recorder
from repro.rt.trace import render_gantt
from repro.workloads.scenarios import motivation_red_light

GOLDEN = Path(__file__).parent / "golden"


def canonical_recording() -> Recorder:
    rec = Recorder()
    run_scenario(motivation_red_light(horizon=2.0), "HCPerf", seed=0, recorder=rec)
    return rec


@pytest.fixture(scope="module")
def golden_run():
    return canonical_recording()


class TestGoldenJsonl:
    def test_bytes_match_committed_golden(self, golden_run):
        golden = (GOLDEN / "motivation_hcperf_s0_h2.jsonl").read_text()
        assert to_jsonl(golden_run) == golden

    def test_golden_round_trips_losslessly(self, golden_run):
        golden = (GOLDEN / "motivation_hcperf_s0_h2.jsonl").read_text()
        clone = from_jsonl(golden)
        assert clone.events == golden_run.events
        assert clone.meta == golden_run.meta
        assert to_jsonl(clone) == golden

    def test_golden_recording_is_invariant_clean(self, golden_run):
        assert check_recording(golden_run) == []

    def test_chrome_export_is_schema_valid(self, golden_run):
        trace = to_chrome_trace(golden_run)
        assert validate_chrome_trace(trace) == []
        # stays valid through a serialize/parse cycle
        assert validate_chrome_trace(json.loads(json.dumps(trace))) == []


class TestPrePrByteIdentity:
    """Recorder disabled (the default), CLI output is exactly pre-PR."""

    @pytest.mark.parametrize(
        "scheduler, golden_name",
        [
            ("HCPerf", "pre_pr_fig13_hcperf_s0_h10.json"),
            ("EDF", "pre_pr_fig13_edf_s0_h10.json"),
        ],
    )
    def test_cli_json_output_unchanged(self, scheduler, golden_name, capsys):
        code = main(
            ["run", "fig13", scheduler, "--seed", "0", "--horizon", "10", "--json"]
        )
        assert code == 0
        assert capsys.readouterr().out == (GOLDEN / golden_name).read_text()


class TestGanttParity:
    def test_recorder_view_renders_identical_gantt(self, chain_graph, small_config):
        from repro.rt import RTExecutor
        from repro.rt.trace import TraceRecorder
        from repro.schedulers import HCPerfScheduler

        executor = RTExecutor(chain_graph, HCPerfScheduler(), small_config)
        executor.tracer = TraceRecorder()
        rec = Recorder()
        executor.recorder = rec
        executor.run()
        legacy = render_gantt(executor.tracer, 0.0, small_config.horizon)
        assert render_gantt(rec, 0.0, small_config.horizon) == legacy
        assert "ASCII" not in legacy  # sanity: rendered rows, not the docstring
