"""Exporters: Chrome trace validity, JSONL byte-stability, load/save."""

import json

import pytest

from repro.obs.export import (
    from_jsonl,
    load_recording,
    save_recording,
    summary_text,
    to_chrome_trace,
    to_jsonl,
    validate_chrome_trace,
)
from repro.obs.recorder import SCHEMA, Recorder
from repro.rt import RTExecutor, SimConfig
from repro.schedulers import EDFScheduler, HCPerfScheduler

from ..conftest import build_chain_graph


@pytest.fixture
def recorded_run():
    executor = RTExecutor(
        build_chain_graph(),
        HCPerfScheduler(),
        SimConfig(n_processors=2, horizon=1.0, coordination_period=0.25, seed=3),
    )
    rec = Recorder()
    executor.recorder = rec
    executor.run()
    rec.annotate(scenario="chain", scheduler="HCPerf", seed=3)
    return rec


class TestChromeTrace:
    def test_export_is_schema_valid(self, recorded_run):
        trace = to_chrome_trace(recorded_run)
        assert validate_chrome_trace(trace) == []
        # JSON-serializable end to end
        json.dumps(trace)

    def test_lane_and_event_structure(self, recorded_run):
        trace = to_chrome_trace(recorded_run)
        events = trace["traceEvents"]
        names = {e["name"] for e in events if e["ph"] == "M"}
        assert "process_name" in names and "thread_name" in names
        spans = [e for e in events if e["ph"] == "X"]
        assert spans and all(e["dur"] >= 0 for e in spans)
        # timestamps are microseconds of simulated time
        assert all(0 <= e["ts"] <= 1.0e6 for e in spans)
        counters = {e["name"] for e in events if e["ph"] == "C"}
        assert "gamma" in counters and "miss_ratio" in counters
        assert trace["otherData"]["seed"] == 3
        assert "tasks" not in trace["otherData"]

    def test_validator_flags_malformed_traces(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"traceEvents": 3}) != []
        bad = {
            "traceEvents": [
                {"ph": "Z", "name": "x"},
                {"ph": "X", "name": "", "ts": 0},
                {"ph": "X", "name": "x", "ts": -1, "dur": -2},
                {"ph": "i", "name": "x", "ts": 0, "s": "q"},
                {"ph": "C", "name": "x", "ts": 0, "args": 5},
            ]
        }
        problems = validate_chrome_trace(bad)
        assert len(problems) >= 5


class TestJsonl:
    def test_round_trip_is_byte_stable(self, recorded_run):
        text = to_jsonl(recorded_run)
        clone = from_jsonl(text)
        assert to_jsonl(clone) == text
        assert clone.events == recorded_run.events
        assert clone.meta["scenario"] == "chain"

    def test_meta_line_first_with_schema(self, recorded_run):
        first = json.loads(to_jsonl(recorded_run).splitlines()[0])
        assert first["ev"] == "meta"
        assert first["schema"] == SCHEMA

    def test_compact_separators(self, recorded_run):
        line = to_jsonl(recorded_run).splitlines()[1]
        assert ": " not in line and ", " not in line

    def test_wrong_schema_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            from_jsonl('{"ev":"meta","schema":"hcperf-trace/99"}\n')

    def test_bad_line_reported_with_number(self):
        text = (
            f'{{"ev":"meta","schema":"{SCHEMA}"}}\n'
            '{"ev":"gamma","t":0.0,"bogus":1}\n'
        )
        with pytest.raises(ValueError, match="line 2"):
            from_jsonl(text)


class TestSaveLoad:
    def test_canonical_json_round_trip(self, recorded_run, tmp_path):
        path = tmp_path / "rec.json"
        save_recording(recorded_run, path)
        clone = load_recording(path)
        assert clone.events == recorded_run.events
        assert clone.meta["scheduler"] == "HCPerf"

    def test_load_accepts_jsonl(self, recorded_run, tmp_path):
        path = tmp_path / "rec.jsonl"
        path.write_text(to_jsonl(recorded_run))
        clone = load_recording(path)
        assert clone.events == recorded_run.events

    def test_load_rejects_chrome_export(self, recorded_run, tmp_path):
        path = tmp_path / "chrome.json"
        path.write_text(json.dumps(to_chrome_trace(recorded_run)))
        with pytest.raises(ValueError, match="Chrome"):
            load_recording(path)

    def test_load_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_recording(path)


class TestSummary:
    def test_summary_mentions_the_essentials(self, recorded_run):
        text = summary_text(recorded_run)
        assert "chain / HCPerf" in text
        assert "jobs_released" in text
        assert "span=" in text

    def test_summary_without_meta(self):
        executor = RTExecutor(
            build_chain_graph(),
            EDFScheduler(),
            SimConfig(n_processors=1, horizon=0.5, coordination_period=0.25, seed=0),
        )
        rec = Recorder()
        executor.recorder = rec
        executor.run()
        assert "time span" in summary_text(rec)


class TestTypedSpanSerialization:
    """The optional ``unit`` key: present iff the platform is typed."""

    def _record(self, profile=None):
        kwargs = (
            {"processor_profile": profile}
            if profile is not None else {"n_processors": 2}
        )
        executor = RTExecutor(
            build_chain_graph(), EDFScheduler(),
            SimConfig(horizon=0.5, coordination_period=0.25, seed=1, **kwargs),
        )
        rec = Recorder()
        executor.recorder = rec
        rec.bind_run(executor)
        executor.run()
        return rec

    def test_identity_platform_spans_have_no_unit_key(self):
        rec = self._record()
        for line in to_jsonl(rec).splitlines()[1:]:
            assert '"unit"' not in line
        assert "processor_profile" not in rec.meta

    def test_typed_platform_unit_round_trips(self):
        rec = self._record(profile="1xCPU+1xGPU@2")
        text = to_jsonl(rec)
        clone = from_jsonl(text)
        spans = [e for e in clone.events if e.kind == "span"]
        assert spans and all(s.unit in ("CPU", "GPU") for s in spans)
        assert to_jsonl(clone) == text
        assert clone.meta["processor_profile"] == "1xCPU+1xGPU@2"
