"""Reductions agree with the executor's own metrics bookkeeping."""

import pytest

from repro.obs.recorder import Recorder
from repro.obs.reduce import (
    miss_ratio_series,
    overall_miss_ratio,
    overload_duty_cycle,
    rate_adapter_resets,
    reduce_recording,
    to_window_samples,
)
from repro.rt import RTExecutor, SimConfig
from repro.schedulers import EDFScheduler, HCPerfScheduler

from ..conftest import build_chain_graph


@pytest.fixture
def twin():
    """One recorded run plus its executor (ground-truth metrics)."""
    executor = RTExecutor(
        build_chain_graph(exec_times=(0.004, 0.02, 0.004)),
        HCPerfScheduler(),
        SimConfig(n_processors=1, horizon=2.0, coordination_period=0.25, seed=11),
    )
    rec = Recorder()
    executor.recorder = rec
    metrics = executor.run()
    return rec, metrics


class TestWindowSeries:
    def test_window_samples_match_metrics(self, twin):
        rec, metrics = twin
        ours = to_window_samples(rec)
        theirs = metrics.windows
        assert len(ours) == len(theirs)
        for a, b in zip(ours, theirs):
            assert (a.t_start, a.t_end, a.completed, a.missed) == (
                b.t_start, b.t_end, b.completed, b.missed
            )
            assert a.utilization == pytest.approx(b.utilization)

    def test_miss_ratio_series_matches(self, twin):
        rec, metrics = twin
        assert miss_ratio_series(rec) == metrics.miss_ratio_series()


class TestAggregates:
    def test_overall_miss_ratio_matches_metrics(self, twin):
        rec, metrics = twin
        assert overall_miss_ratio(rec) == pytest.approx(metrics.overall_miss_ratio)

    def test_duty_cycle_and_resets_on_clean_run(self, twin):
        rec, _ = twin
        assert 0.0 <= overload_duty_cycle(rec) <= 1.0
        assert rate_adapter_resets(rec) >= 0

    def test_duty_cycle_empty_recording_is_zero(self):
        assert overload_duty_cycle(Recorder()) == 0.0
        assert overall_miss_ratio(Recorder()) == 0.0


class TestReduceRecording:
    def test_counters_match_metrics(self, twin):
        rec, metrics = twin
        reg = reduce_recording(rec)
        per_task = metrics.per_task.values()
        released = sum(s.released for s in per_task)
        completed = sum(s.completed for s in per_task)
        missed = sum(s.missed for s in per_task)
        # releases in flight at the horizon resolve as "unresolved" events
        assert reg["jobs_released"].value == released
        assert reg["jobs_completed"].value == completed
        assert reg["jobs_missed"].value == missed
        assert (
            reg["jobs_completed"].value
            + reg["jobs_missed"].value
            + reg["jobs_unresolved"].value
            == released
        )
        assert reg["control_commands"].value == len(metrics.control_events)

    def test_baseline_run_has_no_hcperf_series(self):
        executor = RTExecutor(
            build_chain_graph(),
            EDFScheduler(),
            SimConfig(n_processors=1, horizon=0.5, coordination_period=0.25, seed=0),
        )
        rec = Recorder()
        executor.recorder = rec
        executor.run()
        reg = reduce_recording(rec)
        assert reg["gamma"].total == 0
        assert reg["rate_adapter_resets"].value == 0

    def test_histograms_populated(self, twin):
        rec, _ = twin
        reg = reduce_recording(rec)
        assert reg["span_duration_s"].total == sum(1 for _ in rec.spans())
        assert reg["gamma"].total == len(rec.by_kind("gamma"))
        assert reg["window_miss_ratio"].total == len(rec.by_kind("window"))
