"""Recorder unit behaviour: emission, capacity, run binding, views."""

import pytest

from repro.obs.events import (
    EVENT_KINDS,
    GammaEvent,
    SpanEvent,
    event_from_dict,
)
from repro.obs.recorder import SCHEMA, Recorder
from repro.rt import RTExecutor, SimConfig
from repro.rt.task import Job
from repro.schedulers import EDFScheduler

from ..conftest import build_chain_graph


def make_job(name="source", release=0.0, cycle=0, deadline=0.05):
    graph = build_chain_graph(deadlines=(deadline, deadline, deadline))
    return Job(
        task=graph.task(name), release_time=release, exec_time=0.002, cycle=cycle
    )


class TestEvents:
    def test_every_kind_round_trips(self):
        samples = {
            "release": {"ev": "release", "t": 0.1, "task": "a", "cycle": 0,
                        "deadline": 0.2},
            "span": {"ev": "span", "t": 0.2, "task": "a", "cycle": 0,
                     "processor": 1, "start": 0.1, "finish": 0.2,
                     "release": 0.1, "deadline": 0.3, "outcome": "complete"},
            "drop": {"ev": "drop", "t": 0.2, "task": "a", "cycle": 1,
                     "release": 0.1, "deadline": 0.15, "reason": "expired"},
            "unresolved": {"ev": "unresolved", "t": 1.0, "task": "a",
                           "cycle": 2, "state": "ready"},
            "gamma": {"ev": "gamma", "t": 0.2, "gamma": 0.01,
                      "gamma_max": 0.02, "overloaded": False},
            "controller": {"ev": "controller", "t": 0.5, "u": 0.01,
                           "f_hat": -0.2},
            "rate_adapter": {"ev": "rate_adapter", "t": 0.5,
                             "miss_ratio": 0.1, "kp": 4.0, "reset": True},
            "rate": {"ev": "rate", "t": 0.5, "task": "a", "rate": 20.0},
            "window": {"ev": "window", "t": 0.5, "t_start": 0.0,
                       "completed": 4, "missed": 1, "control_commands": 2,
                       "utilization": 0.7},
            "control": {"ev": "control", "t": 0.3, "response": 0.01},
            "fault": {"ev": "fault", "t": 2.0, "fault": "exec_spike",
                      "detail": "on task=fusion"},
        }
        assert set(samples) == set(EVENT_KINDS)
        for kind, data in samples.items():
            event = event_from_dict(data)
            assert event.kind == kind
            assert event.to_dict() == data

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            event_from_dict({"ev": "nope", "t": 0.0})

    def test_bad_span_outcome_rejected(self):
        with pytest.raises(ValueError, match="outcome"):
            SpanEvent(t=0.0, outcome="maybe")

    def test_window_miss_ratio(self):
        from repro.obs.events import WindowEvent

        assert WindowEvent(t=1.0, completed=3, missed=1).miss_ratio == 0.25
        assert WindowEvent(t=1.0).miss_ratio == 0.0


class TestRecorder:
    def test_helpers_emit_typed_events(self):
        rec = Recorder()
        job = make_job()
        rec.release(job)
        rec.span(job, processor=0, outcome="complete", finish=0.01)
        rec.drop(job, 0.02, reason="evicted")
        rec.gamma(0.02, 0.01, 0.02, False)
        rec.fault(0.5, "exec_spike", "on")
        assert [e.kind for e in rec.events] == [
            "release", "span", "drop", "gamma", "fault",
        ]
        assert len(rec) == 5
        stats = rec.stats()
        assert stats["_total"] == 5 and stats["span"] == 1

    def test_capacity_bounds_and_truncation_flag(self):
        rec = Recorder(capacity=2)
        for t in (0.0, 0.1, 0.2):
            rec.gamma(t, 0.0, 0.0, False)
        assert len(rec) == 2
        assert rec.dropped == 1
        assert rec.truncated
        with pytest.raises(ValueError):
            Recorder(capacity=0)

    def test_span_without_start_falls_back_to_finish(self):
        rec = Recorder()
        rec.span(make_job(), processor=0, outcome="kill", finish=0.5)
        span = next(rec.spans())
        assert span.start == span.finish == 0.5

    def test_bind_and_finalize_capture_meta(self, chain_graph, small_config):
        executor = RTExecutor(chain_graph, EDFScheduler(), small_config)
        rec = Recorder()
        executor.recorder = rec
        executor.run()
        assert rec.meta["n_processors"] == 2
        assert rec.meta["seed"] == 42
        assert rec.meta["t_end"] == pytest.approx(executor.now)
        assert rec.t_end == pytest.approx(2.0)
        tasks = rec.task_meta()
        assert set(tasks) == {"source", "middle", "sink"}
        assert tasks["source"]["rate_range"] == [10.0, 50.0]

    def test_interval_view_mirrors_legacy_tracer(self, chain_graph, small_config):
        from repro.rt.trace import TraceRecorder

        executor = RTExecutor(chain_graph, EDFScheduler(), small_config)
        executor.tracer = TraceRecorder()
        rec = Recorder()
        executor.recorder = rec
        executor.run()
        view = rec.interval_view()
        assert view.entries == executor.tracer.entries
        assert view.verify_non_overlap() == []

    def test_to_dict_round_trip(self):
        rec = Recorder()
        rec.annotate(scenario="toy", seed=7)
        rec.gamma(0.5, 0.01, 0.02, False)
        data = rec.to_dict()
        assert data["schema"] == SCHEMA
        clone = Recorder.from_dict(data)
        assert clone.meta["scenario"] == "toy"
        assert clone.events == rec.events

    def test_from_dict_rejects_wrong_schema(self):
        with pytest.raises(ValueError, match="schema"):
            Recorder.from_dict({"schema": "hcperf-trace/99", "meta": {}, "events": []})

    def test_by_kind_filter(self):
        rec = Recorder()
        rec.gamma(0.0, 0.0, 0.0, False)
        rec.control(0.1, 0.01)
        assert [e.kind for e in rec.by_kind("gamma")] == ["gamma"]
        assert isinstance(rec.by_kind("gamma")[0], GammaEvent)
