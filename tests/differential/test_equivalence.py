"""Differential equivalence: typed model ≡ pre-typed model on identity profiles.

Every cell of the (scheduler × seed) grid replays the canonical fig13 run
under an *explicit* identity :class:`ProcessorProfile` — all-CPU units at
speedup 1.0, every task on the default all-inputs activation — and must
reproduce the committed pre-refactor golden byte for byte, both the JSONL
event trace and the metrics summary.  Passing an explicit profile (rather
than leaving ``processor_profile=None``) is the point: it drives the typed
dispatch path (unit compatibility check, speedup scaling, typed span
metadata gating) and proves it collapses exactly to the old scalar model.

A second pass leaves the config untouched, pinning that the default
no-profile path is also still byte-identical.
"""

from __future__ import annotations

import pytest

from repro.rt.resources import ProcessorProfile

from .harness import GRID, golden_paths, read_golden_trace, record_run

#: fig13's platform is 2 processors; the identity profile mirrors it.
IDENTITY = ProcessorProfile.homogeneous(2)


def _golden(scheduler: str, seed: int) -> tuple[str, str]:
    trace_path, metrics_path = golden_paths(scheduler, seed)
    assert trace_path.exists() and metrics_path.exists(), (
        f"missing golden for ({scheduler}, seed={seed}); "
        "regenerate with make_goldens.py at the pre-refactor commit"
    )
    return read_golden_trace(trace_path), metrics_path.read_text()


class TestIdentityProfileEquivalence:
    """Explicit identity profile → byte-identical to the pre-typed engine."""

    @pytest.mark.parametrize("scheduler,seed", GRID)
    def test_trace_and_metrics_byte_identical(self, scheduler, seed):
        assert IDENTITY.is_identity
        golden_trace, golden_metrics = _golden(scheduler, seed)
        trace, metrics = record_run(
            scheduler, seed, sim_overrides={"processor_profile": IDENTITY}
        )
        assert metrics == golden_metrics, (
            f"({scheduler}, seed={seed}): metrics diverged under identity profile"
        )
        assert trace == golden_trace, (
            f"({scheduler}, seed={seed}): trace diverged under identity profile"
        )


class TestDefaultPathEquivalence:
    """No profile configured → the legacy scalar path is untouched."""

    @pytest.mark.parametrize("seed", [0])
    @pytest.mark.parametrize("scheduler", ["EDF", "HCPerf"])
    def test_default_config_matches_golden(self, scheduler, seed):
        golden_trace, golden_metrics = _golden(scheduler, seed)
        trace, metrics = record_run(scheduler, seed)
        assert metrics == golden_metrics
        assert trace == golden_trace

    def test_string_profile_coerces_to_identity(self):
        """The canonical string form of the identity platform is identity too."""
        golden_trace, golden_metrics = _golden("EDF", 1)
        trace, metrics = record_run("EDF", 1, sim_overrides={"processor_profile": "2xCPU"})
        assert metrics == golden_metrics
        assert trace == golden_trace
