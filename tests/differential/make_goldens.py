"""Regenerate the differential-equivalence goldens.

Run from the repo root::

    PYTHONPATH=src:tests python tests/differential/make_goldens.py

The committed goldens were produced at the commit *before* the typed
processor model landed; regenerate them only if the executor's observable
semantics change intentionally (and say so in the PR — every byte diff
here is a semantic diff of the homogeneous platform).
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from differential.harness import (
    GOLDEN_DIR,
    GRID,
    golden_paths,
    record_run,
    write_golden_trace,
)


def main() -> int:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for scheduler, seed in GRID:
        trace, metrics = record_run(scheduler, seed)
        trace_path, metrics_path = golden_paths(scheduler, seed)
        write_golden_trace(trace_path, trace)
        metrics_path.write_text(metrics)
        print(f"wrote {trace_path.name} ({len(trace)} bytes raw) and {metrics_path.name}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
