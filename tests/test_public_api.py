"""The top-level package exports a coherent public API."""


import repro


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_quickstart_flow(self):
        result = repro.run_scenario(
            repro.fig13_car_following(horizon=5.0), "HCPerf", seed=0
        )
        assert result.scheduler == "HCPerf"
        assert result.overall_miss_ratio() <= 0.1

    def test_scheduler_registry_exported(self):
        # The paper's five schemes plus extra reference baselines.
        assert {"HPF", "EDF", "EDF-VD", "Apollo", "HCPerf"} <= set(repro.SCHEDULERS)
        assert {"RM", "FIFO"} <= set(repro.SCHEDULERS)

    def test_scenario_registry_exported(self):
        assert "fig13" in repro.SCENARIOS

    def test_docstring_doctest_claim(self):
        # The module docstring's quickstart claim holds.
        result = repro.run_scenario(
            repro.fig13_car_following(horizon=20.0), "HCPerf", seed=0
        )
        assert result.overall_miss_ratio() <= 0.05
