"""Shared fixtures: small task graphs and executor factories."""

from __future__ import annotations

import pytest

from repro.rt import ConstantExecTime, SimConfig, TaskGraph, TaskSpec


def build_chain_graph(
    rate: float = 20.0,
    rate_range=(10.0, 50.0),
    exec_times=(0.002, 0.004, 0.003),
    deadlines=(0.05, 0.06, 0.05),
) -> TaskGraph:
    """source -> middle -> sink, constant execution times."""
    g = TaskGraph()
    g.add_task(
        TaskSpec(
            "source",
            priority=3,
            relative_deadline=deadlines[0],
            exec_model=ConstantExecTime(exec_times[0]),
            rate=rate,
            rate_range=rate_range,
        )
    )
    g.add_task(
        TaskSpec(
            "middle",
            priority=2,
            relative_deadline=deadlines[1],
            exec_model=ConstantExecTime(exec_times[1]),
        )
    )
    g.add_task(
        TaskSpec(
            "sink",
            priority=1,
            relative_deadline=deadlines[2],
            exec_model=ConstantExecTime(exec_times[2]),
        )
    )
    g.add_edge("source", "middle")
    g.add_edge("middle", "sink")
    g.validate()
    return g


def build_diamond_graph(rate: float = 10.0) -> TaskGraph:
    """source fans out to two branches that join at the sink."""
    g = TaskGraph()
    g.add_task(
        TaskSpec(
            "source",
            priority=4,
            relative_deadline=0.1,
            exec_model=ConstantExecTime(0.001),
            rate=rate,
            rate_range=(5.0, 20.0),
        )
    )
    for name in ("left", "right"):
        g.add_task(
            TaskSpec(
                name,
                priority=3,
                relative_deadline=0.1,
                exec_model=ConstantExecTime(0.002),
            )
        )
        g.add_edge("source", name)
    g.add_task(
        TaskSpec("sink", priority=1, relative_deadline=0.1, exec_model=ConstantExecTime(0.001))
    )
    g.add_edge("left", "sink")
    g.add_edge("right", "sink")
    g.validate()
    return g


@pytest.fixture
def chain_graph() -> TaskGraph:
    return build_chain_graph()


@pytest.fixture
def diamond_graph() -> TaskGraph:
    return build_diamond_graph()


@pytest.fixture
def small_config() -> SimConfig:
    return SimConfig(n_processors=2, horizon=2.0, coordination_period=0.25, seed=42)
