"""Cross-cutting integration tests: every scenario × every scheduler.

Short horizons — these verify the wiring holds everywhere, not the paper
claims (the experiment tests and benches do that).
"""

import pytest

from repro.experiments.runner import DEFAULT_SCHEMES, run_scenario
from repro.rt import RTExecutor, SimConfig, TraceRecorder
from repro.schedulers import make_scheduler
from repro.workloads import SCENARIOS, full_task_graph


HORIZON = 4.0


@pytest.mark.parametrize("scenario_name", sorted(SCENARIOS))
@pytest.mark.parametrize("scheme", DEFAULT_SCHEMES)
def test_every_pairing_runs_clean(scenario_name, scheme):
    factory = SCENARIOS[scenario_name]
    result = run_scenario(factory(horizon=HORIZON), scheme, seed=0)
    assert result.horizon == pytest.approx(HORIZON, abs=0.2)
    assert 0.0 <= result.overall_miss_ratio() <= 1.0
    assert 0.0 <= result.utilization <= 1.0 + 1e-9
    summary = result.to_dict()
    assert summary["scheduler"] == scheme
    # Rates stayed inside every adaptable task's range.
    graph = factory(horizon=HORIZON).graph_factory()
    for name, rate in result.final_rates.items():
        spec = graph.task(name)
        if spec.rate_range is not None:
            lo, hi = spec.rate_range
            assert lo <= rate <= hi, name


@pytest.mark.parametrize("scheme", DEFAULT_SCHEMES)
def test_full_graph_trace_invariants(scheme):
    """The 23-task graph honours non-preemption under every policy."""
    executor = RTExecutor(
        full_task_graph(),
        make_scheduler(scheme),
        SimConfig(n_processors=2, horizon=2.0, coordination_period=0.5, seed=0),
    )
    executor.tracer = TraceRecorder()
    executor.run()
    assert executor.tracer.verify_non_overlap() == []
    # Apollo binding: every traced execution ran on the bound processor.
    if scheme == "Apollo":
        for entry in executor.tracer.entries:
            bound = executor.graph.task(entry.task).processor_binding
            assert entry.processor == bound


def test_hcperf_gamma_stays_within_cap():
    result = run_scenario(SCENARIOS["fig13"](horizon=10.0), "HCPerf", seed=0)
    from repro.core.dynamic_priority import DynamicPriorityConfig

    cap = DynamicPriorityConfig().gamma_cap
    assert all(0.0 <= g <= cap + 1e-12 for _, g in result.gamma_history)


def test_schedulers_actually_differ():
    """Same seed, same scenario — different policies must visibly differ."""
    outcomes = set()
    for scheme in DEFAULT_SCHEMES:
        r = run_scenario(SCENARIOS["fig13"](horizon=15.0), scheme, seed=3)
        outcomes.add(round(r.control_throughput(), 2))
    assert len(outcomes) >= 3
