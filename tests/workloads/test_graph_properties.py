"""Property-based structural tests over generated task graphs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.generator import GeneratorConfig, generate_graph
from repro.workloads.profiles import effective_rates


@st.composite
def configs(draw):
    return GeneratorConfig(
        n_sources=draw(st.integers(min_value=1, max_value=4)),
        n_layers=draw(st.integers(min_value=0, max_value=4)),
        tasks_per_layer=draw(st.integers(min_value=1, max_value=5)),
        edge_density=draw(st.floats(min_value=0.0, max_value=1.0)),
        seed=draw(st.integers(min_value=0, max_value=500)),
    )


@given(cfg=configs())
@settings(max_examples=40, deadline=None)
def test_generated_graphs_are_well_formed(cfg):
    g = generate_graph(cfg)
    g.validate()

    order = [t.name for t in g.topological_order()]
    position = {name: i for i, name in enumerate(order)}
    # Every edge goes forward in topological order.
    for src, dst in g.edges():
        assert position[src] < position[dst]

    # Ancestor/descendant duality.
    for t in g:
        for anc in g.ancestors(t.name):
            assert t.name in g.descendants(anc)

    # Exactly one sink named control; sources match config.
    assert [t.name for t in g.sinks()] == ["control"]
    assert len(g.sources()) == cfg.n_sources

    # Effective rates: AND-activation can only slow tasks down.
    eff = effective_rates(g)
    max_source_rate = max(eff[s.name] for s in g.sources())
    for t in g:
        assert 0.0 < eff[t.name] <= max_source_rate + 1e-9

    # Every chain starts at a source and ends at the control sink.
    for chain in g.chains():
        assert chain[0].startswith("source_")
        assert chain[-1] == "control"


@given(cfg=configs())
@settings(max_examples=20, deadline=None)
def test_dot_and_summary_render_for_any_graph(cfg):
    g = generate_graph(cfg)
    dot = g.to_dot()
    assert dot.startswith("digraph") and dot.endswith("}")
    summary = g.summary()
    assert all(t.name in summary for t in g)
