"""Unit tests for the Fig. 2 / Fig. 11 task-graph profiles."""

import pytest

from repro.rt import ConstantExecTime, Criticality, ExecContext
from repro.workloads import (
    CONTROL_TASK,
    FUSION_TASK,
    default_fusion_model,
    full_task_graph,
    motivation_graph,
    scene_coupled_fusion_model,
)
from repro.workloads.profiles import effective_rates, estimated_utilization


class TestMotivationGraph:
    def test_builds_and_validates(self):
        g = motivation_graph()
        g.validate()
        assert len(g) == 7

    def test_single_source_and_sink(self):
        g = motivation_graph()
        assert [t.name for t in g.sources()] == ["image_preprocessing"]
        assert [t.name for t in g.sinks()] == [CONTROL_TASK]

    def test_control_has_highest_priority(self):
        g = motivation_graph()
        priorities = {t.name: t.priority for t in g}
        assert priorities[CONTROL_TASK] == min(priorities.values())

    def test_fusion_model_override(self):
        g = motivation_graph(fusion_model=ConstantExecTime(0.123))
        assert g.task(FUSION_TASK).exec_model.value == 0.123

    def test_source_rate_configurable(self):
        g = motivation_graph(source_rate=15.0, rate_range=(5.0, 20.0))
        assert g.task("image_preprocessing").rate == 15.0


class TestFullGraph:
    def test_has_23_tasks(self):
        assert len(full_task_graph()) == 23

    def test_validates(self):
        full_task_graph().validate()

    def test_sources_are_the_six_sensors(self):
        g = full_task_graph()
        sources = {t.name for t in g.sources()}
        assert sources == {
            "camera_front", "camera_traffic", "lidar_pointcloud",
            "radar_front", "gps_imu", "chassis_feedback",
        }

    def test_single_sink_is_control_command(self):
        g = full_task_graph()
        assert [t.name for t in g.sinks()] == [CONTROL_TASK]

    def test_gps_imu_range_matches_paper(self):
        # §III-A quotes the GPS (IMU) allowable range as [10, 100] Hz.
        g = full_task_graph()
        assert g.task("gps_imu").rate_range == (10.0, 100.0)

    def test_priority_convention(self):
        g = full_task_graph()
        assert g.task(CONTROL_TASK).priority == 1
        # Fusion sits at the bottom of the static priority order.
        assert g.task(FUSION_TASK).priority == max(t.priority for t in g)

    def test_control_chain_is_high_criticality(self):
        g = full_task_graph()
        for name in (CONTROL_TASK, "motion_planning", "localization"):
            assert g.task(name).criticality is Criticality.HIGH

    def test_fusion_depends_on_three_detections(self):
        g = full_task_graph()
        preds = {t.name for t in g.ipred(FUSION_TASK)}
        assert preds == {
            "camera_object_detection", "lidar_object_detection", "radar_processing",
        }

    def test_every_source_reaches_the_sink(self):
        g = full_task_graph()
        for src in g.sources():
            assert CONTROL_TASK in g.descendants(src.name)

    def test_fusion_model_override(self):
        g = full_task_graph(fusion_model=ConstantExecTime(0.5))
        assert g.task(FUSION_TASK).exec_model.value == 0.5

    def test_gpu_flags(self):
        g = full_task_graph()
        assert g.task("camera_object_detection").uses_gpu
        assert not g.task(FUSION_TASK).uses_gpu


class TestFusionModels:
    def test_default_model_around_nominal(self):
        m = default_fusion_model(0.020)
        assert m.mean(ExecContext()) == pytest.approx(0.020, rel=1e-6)

    def test_scene_coupled_growth(self):
        m = scene_coupled_fusion_model()
        c_small = m.mean(ExecContext(scene_complexity=5))
        c_big = m.mean(ExecContext(scene_complexity=30))
        assert c_big > 3 * c_small


class TestRatesAndUtilization:
    def test_effective_rates_sources(self):
        g = full_task_graph()
        eff = effective_rates(g)
        assert eff["camera_front"] == 40.0
        assert eff["gps_imu"] == 50.0

    def test_effective_rates_and_gate_minimum(self):
        g = full_task_graph()
        eff = effective_rates(g)
        # Fusion fires at the slowest of its inputs (all 40 Hz here).
        assert eff[FUSION_TASK] == 40.0
        # Localization joins pc_pre (40) and gps (50): min is 40.
        assert eff["localization"] == 40.0

    def test_effective_rates_with_override(self):
        g = full_task_graph()
        eff = effective_rates(g, rates={"camera_front": 20.0})
        assert eff["image_preprocessing"] == 20.0

    def test_utilization_calibration(self):
        # The DESIGN.md calibration targets for the 2-processor platform.
        normal = estimated_utilization(full_task_graph(), 2)
        assert 0.75 <= normal <= 0.92
        elevated = estimated_utilization(
            full_task_graph(fusion_model=ConstantExecTime(0.040)), 2
        )
        assert elevated > 1.05

    def test_utilization_scales_with_processors(self):
        g = full_task_graph()
        assert estimated_utilization(g, 4) == pytest.approx(
            estimated_utilization(g, 2) / 2
        )

    def test_utilization_validation(self):
        with pytest.raises(ValueError):
            estimated_utilization(full_task_graph(), 0)
