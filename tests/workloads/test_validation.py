"""Tests for the static platform validation report."""

import pytest

from repro.workloads import full_task_graph
from repro.workloads.generator import GeneratorConfig, generate_graph
from repro.workloads.validation import render_report, validate_platform
from tests.conftest import build_chain_graph


class TestValidatePlatform:
    def test_healthy_graph_no_warnings(self):
        g = build_chain_graph()  # tiny load on 2 processors
        report = validate_platform(g, 2)
        assert report.ok
        assert not report.overloaded
        assert 0.0 < report.utilization < 0.5

    def test_parameter_validation(self):
        g = build_chain_graph()
        with pytest.raises(ValueError):
            validate_platform(g, 0)
        with pytest.raises(ValueError):
            validate_platform(g, 2, utilization_caution=0.0)

    def test_per_task_checks(self):
        g = build_chain_graph()
        report = validate_platform(g, 2)
        names = {c.name for c in report.tasks}
        assert names == {"source", "middle", "sink"}
        for c in report.tasks:
            assert c.feasible
            assert c.utilization_share > 0.0

    def test_infeasible_task_flagged(self):
        g = build_chain_graph(exec_times=(0.002, 0.2, 0.003))  # middle > D
        report = validate_platform(g, 2)
        assert not report.ok
        assert any("can never" in w for w in report.warnings)
        middle = next(c for c in report.tasks if c.name == "middle")
        assert not middle.feasible

    def test_overload_flagged(self):
        g = generate_graph(GeneratorConfig(target_utilization=1.4, seed=0))
        report = validate_platform(g, 2)
        assert report.overloaded
        assert any("overloaded" in w for w in report.warnings)

    def test_near_capacity_flagged(self):
        g = generate_graph(GeneratorConfig(target_utilization=0.9, seed=0))
        report = validate_platform(g, 2)
        assert not report.overloaded
        assert any("near capacity" in w for w in report.warnings)

    def test_scene_complexity_changes_verdict(self):
        from repro.workloads import scene_coupled_fusion_model

        g_fn = lambda: full_task_graph(fusion_model=scene_coupled_fusion_model())
        calm = validate_platform(g_fn(), 2, scene_complexity=5.0)
        jam = validate_platform(g_fn(), 2, scene_complexity=30.0)
        assert jam.utilization > calm.utilization
        assert jam.overloaded

    def test_high_criticality_split(self):
        report = validate_platform(full_task_graph(), 2)
        assert 0.0 < report.utilization_high_criticality < report.utilization

    def test_critical_path_positive(self):
        report = validate_platform(full_task_graph(), 2)
        assert report.critical_path_exec > 0.0


class TestRenderReport:
    def test_render_healthy(self):
        out = render_report(validate_platform(build_chain_graph(), 2))
        assert "No warnings" in out

    def test_render_with_warnings(self):
        g = generate_graph(GeneratorConfig(target_utilization=1.4, seed=0))
        out = render_report(validate_platform(g, 2))
        assert "WARNINGS" in out and "!" in out

    def test_render_lists_heaviest_tasks(self):
        out = render_report(validate_platform(full_task_graph(), 2), top=3)
        assert "sensor_fusion" in out
