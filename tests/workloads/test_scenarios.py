"""Unit tests for scenario factories."""

import pytest

from repro.vehicle import CarFollowingPlant, LaneKeepingPlant
from repro.workloads import (
    SCENARIOS,
    Scenario,
    fig13_car_following,
    hardware_car_following,
    lane_keeping_loop,
    motivation_red_light,
    traffic_jam_responsiveness,
)


ALL_FACTORIES = [
    fig13_car_following,
    motivation_red_light,
    hardware_car_following,
    traffic_jam_responsiveness,
    lane_keeping_loop,
]


class TestRegistry:
    def test_registry_complete(self):
        assert set(SCENARIOS) == {
            "fig13", "motivation", "hardware", "traffic_jam", "lane_keeping",
        }

    def test_registry_factories_work(self):
        for factory in SCENARIOS.values():
            assert isinstance(factory(), Scenario)


class TestFactories:
    @pytest.mark.parametrize("factory", ALL_FACTORIES)
    def test_builds_valid_scenario(self, factory):
        sc = factory()
        assert sc.kind in ("car_following", "lane_keeping")
        graph = sc.graph_factory()
        graph.validate()
        plant = sc.plant_factory(0)
        if sc.kind == "car_following":
            assert isinstance(plant, CarFollowingPlant)
        else:
            assert isinstance(plant, LaneKeepingPlant)
        assert sc.complexity(0.0) >= 0.0

    @pytest.mark.parametrize("factory", ALL_FACTORIES)
    def test_graphs_are_fresh_per_call(self, factory):
        sc = factory()
        assert sc.graph_factory() is not sc.graph_factory()

    def test_horizon_parameter(self):
        sc = fig13_car_following(horizon=12.5)
        assert sc.sim.horizon == 12.5

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            Scenario(
                name="bad", kind="flying", graph_factory=lambda: None,
                plant_factory=lambda s: None,
            )

    def test_invalid_dt_rejected(self):
        with pytest.raises(ValueError, match="plant_dt"):
            Scenario(
                name="bad", kind="car_following", graph_factory=lambda: None,
                plant_factory=lambda s: None, plant_dt=0.0,
            )


class TestScenarioDetails:
    def test_fig13_complexity_flat(self):
        sc = fig13_car_following()
        assert sc.complexity(50.0) == 0.0  # load comes from the step model

    def test_motivation_complexity_ramps(self):
        sc = motivation_red_light()
        assert sc.complexity(20.0) > sc.complexity(0.0)

    def test_traffic_jam_spike(self):
        sc = traffic_jam_responsiveness()
        assert sc.complexity(15.0) > sc.complexity(5.0)
        assert sc.complexity(25.0) == sc.complexity(5.0)

    def test_hardware_plant_is_noisy_scaled_car(self):
        plant = hardware_car_following().plant_factory(0)
        assert plant.speed_noise is not None
        assert plant.dynamics.actuator_lag > 0.0
        assert plant.gap < 5.0  # scaled-car distances

    def test_hardware_noise_varies_with_seed(self):
        p1 = hardware_car_following().plant_factory(1)
        p2 = hardware_car_following().plant_factory(2)
        p1.step(0.1)
        p2.step(0.1)
        c1 = p1.compute_command(0.1, 0.1)
        c2 = p2.compute_command(0.1, 0.1)
        assert c1.accel != c2.accel
