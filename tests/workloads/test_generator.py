"""Unit and property tests for the random workload generator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rt import RTExecutor, SimConfig
from repro.schedulers import EDFScheduler
from repro.workloads.generator import GeneratorConfig, generate_graph
from repro.workloads.profiles import estimated_utilization


class TestConfigValidation:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            GeneratorConfig(n_sources=0)
        with pytest.raises(ValueError):
            GeneratorConfig(tasks_per_layer=0)

    def test_load_validation(self):
        with pytest.raises(ValueError):
            GeneratorConfig(target_utilization=0.0)
        with pytest.raises(ValueError):
            GeneratorConfig(source_rate=0.0)
        with pytest.raises(ValueError):
            GeneratorConfig(edge_density=1.5)
        with pytest.raises(ValueError):
            GeneratorConfig(deadline_factor=0.0)


class TestStructure:
    def test_default_generation(self):
        g = generate_graph()
        g.validate()
        assert len(g.sources()) == 3
        assert [t.name for t in g.sinks()] == ["control"]

    def test_task_count(self):
        cfg = GeneratorConfig(n_sources=2, n_layers=2, tasks_per_layer=4)
        g = generate_graph(cfg)
        assert len(g) == 2 + 2 * 4 + 1

    def test_zero_layers(self):
        g = generate_graph(GeneratorConfig(n_layers=0))
        # Sources connect straight to the control sink.
        assert len(g) == 3 + 1
        assert {p.name for p in g.ipred("control")} == {
            "source_0", "source_1", "source_2",
        }

    def test_every_source_reaches_control(self):
        g = generate_graph(GeneratorConfig(seed=4, edge_density=0.0))
        # With density 0 only spanning edges exist; still a valid DAG where
        # the sink is reachable from at least one source.
        assert g.ancestors("control")

    def test_deterministic(self):
        a = generate_graph(GeneratorConfig(seed=11))
        b = generate_graph(GeneratorConfig(seed=11))
        assert a.edges() == b.edges()
        assert [t.name for t in a] == [t.name for t in b]

    def test_seeds_differ(self):
        a = generate_graph(GeneratorConfig(seed=1, edge_density=0.5))
        b = generate_graph(GeneratorConfig(seed=2, edge_density=0.5))
        assert a.edges() != b.edges()


class TestUtilizationTarget:
    @given(
        target=st.floats(min_value=0.2, max_value=1.2),
        seed=st.integers(min_value=0, max_value=200),
    )
    @settings(max_examples=25, deadline=None)
    def test_target_hit(self, target, seed):
        cfg = GeneratorConfig(target_utilization=target, seed=seed)
        g = generate_graph(cfg)
        util = estimated_utilization(g, cfg.n_processors)
        assert util == pytest.approx(target, rel=0.05)


class TestRunnable:
    def test_generated_graph_executes(self):
        g = generate_graph(GeneratorConfig(target_utilization=0.5, seed=3))
        ex = RTExecutor(
            g, EDFScheduler(), SimConfig(n_processors=2, horizon=1.0, seed=0)
        )
        m = ex.run()
        assert m.per_task["control"].completed > 0
        assert m.overall_miss_ratio < 0.05

    def test_overloaded_graph_misses(self):
        g = generate_graph(GeneratorConfig(target_utilization=1.6, seed=3))
        ex = RTExecutor(
            g, EDFScheduler(), SimConfig(n_processors=2, horizon=2.0, seed=0)
        )
        m = ex.run()
        assert m.overall_miss_ratio > 0.05
