"""Unit tests for lead-vehicle speed profiles."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vehicle import (
    ConstantSpeed,
    PiecewiseLinearSpeed,
    SineSpeed,
    hardware_routine,
    red_light_routine,
    traffic_jam_routine,
)


class TestConstant:
    def test_value(self):
        p = ConstantSpeed(12.0)
        assert p.speed(0.0) == 12.0 and p.speed(99.0) == 12.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ConstantSpeed(-1.0)


class TestSine:
    def test_validation(self):
        with pytest.raises(ValueError):
            SineSpeed(lo=-1.0, hi=5.0, period=7.0)
        with pytest.raises(ValueError):
            SineSpeed(lo=5.0, hi=1.0, period=7.0)
        with pytest.raises(ValueError):
            SineSpeed(lo=1.0, hi=5.0, period=0.0)

    def test_starts_at_midpoint(self):
        p = SineSpeed(lo=10.0, hi=20.0, period=7.0)
        assert p.speed(0.0) == pytest.approx(15.0)

    def test_peak_at_quarter_period(self):
        p = SineSpeed(lo=10.0, hi=20.0, period=8.0)
        assert p.speed(2.0) == pytest.approx(20.0)
        assert p.speed(6.0) == pytest.approx(10.0)

    def test_periodicity(self):
        p = SineSpeed(lo=10.0, hi=20.0, period=7.0)
        assert p.speed(1.3) == pytest.approx(p.speed(1.3 + 7.0))

    @given(t=st.floats(min_value=0.0, max_value=100.0))
    @settings(max_examples=60)
    def test_bounded(self, t):
        p = SineSpeed(lo=10.0, hi=20.0, period=7.0)
        assert 10.0 - 1e-9 <= p.speed(t) <= 20.0 + 1e-9

    def test_phase_shift(self):
        p = SineSpeed(lo=0.0, hi=2.0, period=4.0, phase=math.pi / 2)
        assert p.speed(0.0) == pytest.approx(2.0)


class TestPiecewise:
    def test_validation(self):
        with pytest.raises(ValueError):
            PiecewiseLinearSpeed([])
        with pytest.raises(ValueError):
            PiecewiseLinearSpeed([(1.0, 5.0), (0.5, 3.0)])
        with pytest.raises(ValueError):
            PiecewiseLinearSpeed([(0.0, -1.0)])

    def test_interpolation(self):
        p = PiecewiseLinearSpeed([(0.0, 0.0), (10.0, 10.0)])
        assert p.speed(5.0) == pytest.approx(5.0)

    def test_holds_before_and_after(self):
        p = PiecewiseLinearSpeed([(1.0, 2.0), (3.0, 6.0)])
        assert p.speed(0.0) == 2.0
        assert p.speed(99.0) == 6.0

    def test_duplicate_time_steps(self):
        p = PiecewiseLinearSpeed([(0.0, 1.0), (1.0, 1.0), (1.0, 5.0)])
        assert p.speed(1.0) in (1.0, 5.0)  # step change at t=1


class TestRoutines:
    def test_hardware_routine_shape(self):
        p = hardware_routine(v_cruise=1.0)
        assert p.speed(0.0) == 0.0
        assert p.speed(5.0) == pytest.approx(1.0)
        assert p.speed(10.0) == pytest.approx(1.0)
        assert p.speed(20.0) == pytest.approx(0.0)
        assert 0.0 < p.speed(2.5) < 1.0

    def test_red_light_routine_shape(self):
        p = red_light_routine(v0=10.0, t_brake=5.0, t_stop=25.0)
        assert p.speed(0.0) == 10.0
        assert p.speed(5.0) == 10.0
        assert p.speed(25.0) == 0.0
        assert p.speed(15.0) == pytest.approx(5.0)

    def test_traffic_jam_routine_shape(self):
        p = traffic_jam_routine()
        assert p.speed(0.0) == 20.0
        assert p.speed(20.0) == pytest.approx(5.0)
        assert p.speed(25.0) == pytest.approx(5.0)
        assert p.speed(45.0) == pytest.approx(20.0)
