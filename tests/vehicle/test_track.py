"""Unit tests for the oval track geometry."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vehicle import OvalTrack

TRACK = OvalTrack(straight_length=60.0, radius=15.0)


class TestGeometry:
    def test_validation(self):
        with pytest.raises(ValueError):
            OvalTrack(straight_length=0.0, radius=10.0)
        with pytest.raises(ValueError):
            OvalTrack(straight_length=10.0, radius=-1.0)

    def test_length(self):
        assert TRACK.length == pytest.approx(2 * 60.0 + 2 * math.pi * 15.0)

    def test_wrap(self):
        assert TRACK.wrap(TRACK.length + 5.0) == pytest.approx(5.0)
        assert TRACK.wrap(-1.0) == pytest.approx(TRACK.length - 1.0)

    def test_pose_at_origin(self):
        x, y, h = TRACK.pose(0.0)
        assert (x, y, h) == (0.0, 0.0, 0.0)

    def test_pose_on_top_straight(self):
        s = 60.0 + math.pi * 15.0 + 30.0  # middle of the top straight
        x, y, h = TRACK.pose(s)
        assert y == pytest.approx(30.0)
        assert h == pytest.approx(math.pi)
        assert x == pytest.approx(30.0)

    def test_pose_continuity(self):
        # Walk the whole loop; consecutive poses must be ~ds apart.
        ds = 0.1
        prev = TRACK.pose(0.0)
        s = ds
        while s <= TRACK.length + ds:
            cur = TRACK.pose(s)
            dist = math.hypot(cur[0] - prev[0], cur[1] - prev[1])
            assert dist == pytest.approx(ds, rel=0.05)
            prev = cur
            s += ds

    def test_closes_the_loop(self):
        x0, y0, _ = TRACK.pose(0.0)
        x1, y1, _ = TRACK.pose(TRACK.length)
        assert math.hypot(x1 - x0, y1 - y0) < 1e-6


class TestCurvature:
    def test_zero_on_straights(self):
        assert TRACK.curvature(30.0) == 0.0
        top = 60.0 + math.pi * 15.0 + 30.0
        assert TRACK.curvature(top) == 0.0

    def test_one_over_r_on_turns(self):
        first_turn = 60.0 + 1.0
        assert TRACK.curvature(first_turn) == pytest.approx(1.0 / 15.0)

    def test_on_turn_flag(self):
        assert not TRACK.on_turn(30.0)
        assert TRACK.on_turn(60.0 + 1.0)


class TestProjection:
    @given(s=st.floats(min_value=0.0, max_value=2 * 60.0 + 2 * math.pi * 15.0))
    @settings(max_examples=60, deadline=None)
    def test_centerline_points_project_to_zero_offset(self, s):
        x, y, _ = TRACK.pose(s)
        s_hat, offset = TRACK.project(x, y, s_hint=s)
        assert abs(offset) < 0.02
        # Arc length recovered up to wrap-around.
        delta = min(abs(s_hat - TRACK.wrap(s)), TRACK.length - abs(s_hat - TRACK.wrap(s)))
        assert delta < 0.05

    def test_left_offset_is_positive(self):
        # On the bottom straight heading +x, "left" is +y.
        s_hat, offset = TRACK.project(30.0, 1.5, s_hint=30.0)
        assert offset == pytest.approx(1.5, abs=0.02)
        s_hat, offset = TRACK.project(30.0, -1.5, s_hint=30.0)
        assert offset == pytest.approx(-1.5, abs=0.02)

    def test_projection_with_coarse_hint(self):
        x, y, _ = TRACK.pose(45.0)
        s_hat, offset = TRACK.project(x, y, s_hint=40.0)  # 5 m stale hint
        assert s_hat == pytest.approx(45.0, abs=0.1)
