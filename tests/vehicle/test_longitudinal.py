"""Unit tests for longitudinal dynamics and the ACC law."""


import pytest

from repro.vehicle import ACCController, LongitudinalDynamics, LongitudinalState


class TestDynamics:
    def test_validation(self):
        with pytest.raises(ValueError):
            LongitudinalDynamics(max_accel=0.0)
        with pytest.raises(ValueError):
            LongitudinalDynamics(max_brake=-1.0)
        with pytest.raises(ValueError):
            LongitudinalDynamics(actuator_lag=-0.1)

    def test_clamp(self):
        d = LongitudinalDynamics(max_accel=2.0, max_brake=5.0)
        assert d.clamp(10.0) == 2.0
        assert d.clamp(-10.0) == -5.0
        assert d.clamp(1.0) == 1.0

    def test_constant_accel_integration(self):
        d = LongitudinalDynamics(max_accel=5.0)
        s = LongitudinalState(speed=0.0)
        for _ in range(100):
            d.step(s, 1.0, 0.01)
        assert s.speed == pytest.approx(1.0, rel=1e-6)
        assert s.position == pytest.approx(0.5, rel=1e-2)

    def test_invalid_dt(self):
        d = LongitudinalDynamics()
        with pytest.raises(ValueError):
            d.step(LongitudinalState(), 0.0, 0.0)

    def test_no_reverse_under_braking(self):
        d = LongitudinalDynamics(max_brake=10.0)
        s = LongitudinalState(speed=0.5)
        for _ in range(100):
            d.step(s, -10.0, 0.01)
        assert s.speed == 0.0
        assert s.accel >= 0.0

    def test_actuator_lag_smooths_response(self):
        fast = LongitudinalDynamics(actuator_lag=0.0)
        slow = LongitudinalDynamics(actuator_lag=0.5)
        sf, ss = LongitudinalState(), LongitudinalState()
        fast.step(sf, 2.0, 0.01)
        slow.step(ss, 2.0, 0.01)
        assert sf.accel == pytest.approx(2.0)
        assert 0.0 < ss.accel < 0.1

    def test_lag_converges_to_command(self):
        d = LongitudinalDynamics(actuator_lag=0.1)
        s = LongitudinalState()
        for _ in range(500):
            d.step(s, 1.5, 0.01)
        assert s.accel == pytest.approx(1.5, rel=1e-3)

    def test_state_copy_is_independent(self):
        s = LongitudinalState(position=1.0, speed=2.0, accel=0.5)
        c = s.copy()
        c.speed = 99.0
        assert s.speed == 2.0


class TestACC:
    def test_validation(self):
        with pytest.raises(ValueError):
            ACCController(k_speed=-1.0)
        with pytest.raises(ValueError):
            ACCController(headway=-0.5)

    def test_desired_gap(self):
        acc = ACCController(headway=1.5, standstill_gap=5.0)
        assert acc.desired_gap(10.0) == pytest.approx(20.0)
        assert acc.desired_gap(0.0) == pytest.approx(5.0)

    def test_accelerates_when_slower_than_lead(self):
        acc = ACCController()
        gap = acc.desired_gap(10.0)
        assert acc.accel_command(v_lead=15.0, v_follow=10.0, gap=gap) > 0.0

    def test_brakes_when_faster_than_lead(self):
        acc = ACCController()
        gap = acc.desired_gap(15.0)
        assert acc.accel_command(v_lead=10.0, v_follow=15.0, gap=gap) < 0.0

    def test_brakes_when_gap_too_small(self):
        acc = ACCController()
        assert acc.accel_command(v_lead=10.0, v_follow=10.0, gap=2.0) < 0.0

    def test_equilibrium_is_zero_command(self):
        acc = ACCController()
        gap = acc.desired_gap(12.0)
        assert acc.accel_command(12.0, 12.0, gap) == pytest.approx(0.0)

    def test_closed_loop_converges_to_lead_speed(self):
        acc = ACCController(k_speed=2.0, k_gap=0.3)
        d = LongitudinalDynamics(max_accel=3.0, max_brake=6.0)
        lead_v, lead_pos = 15.0, 40.0
        s = LongitudinalState(speed=10.0)
        for _ in range(4000):
            lead_pos += lead_v * 0.01
            cmd = acc.accel_command(lead_v, s.speed, lead_pos - s.position)
            d.step(s, cmd, 0.01)
        assert s.speed == pytest.approx(lead_v, abs=0.05)
        assert (lead_pos - s.position) == pytest.approx(acc.desired_gap(lead_v), abs=0.5)
