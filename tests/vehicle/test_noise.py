"""Unit tests for the sensor noise models."""

import pytest

from repro.vehicle import GaussianNoise, QuantizedSensor


class TestGaussianNoise:
    def test_zero_sigma_identity(self):
        n = GaussianNoise(sigma=0.0)
        assert n.apply(1.5) == 1.5

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            GaussianNoise(sigma=-0.1)

    def test_deterministic_per_seed(self):
        a = [GaussianNoise(0.1, seed=5).apply(1.0) for _ in range(1)]
        b = [GaussianNoise(0.1, seed=5).apply(1.0) for _ in range(1)]
        assert a == b

    def test_different_seeds_differ(self):
        assert GaussianNoise(0.1, seed=1).apply(1.0) != GaussianNoise(0.1, seed=2).apply(1.0)

    def test_reset_restarts_stream(self):
        n = GaussianNoise(0.1, seed=3)
        first = n.apply(1.0)
        n.apply(1.0)
        n.reset(seed=3)
        assert n.apply(1.0) == first

    def test_statistics(self):
        n = GaussianNoise(0.5, seed=0)
        samples = [n.apply(0.0) for _ in range(5000)]
        mean = sum(samples) / len(samples)
        var = sum((s - mean) ** 2 for s in samples) / len(samples)
        assert mean == pytest.approx(0.0, abs=0.05)
        assert var == pytest.approx(0.25, rel=0.1)


class TestQuantizedSensor:
    def test_quantization(self):
        q = QuantizedSensor(resolution=0.1)
        assert q.read(0.26) == pytest.approx(0.3)
        assert q.read(0.24) == pytest.approx(0.2)

    def test_invalid_resolution(self):
        with pytest.raises(ValueError):
            QuantizedSensor(resolution=0.0)

    def test_noise_then_quantize(self):
        q = QuantizedSensor(resolution=0.05, noise=GaussianNoise(0.01, seed=1))
        v = q.read(1.0)
        assert abs(v / 0.05 - round(v / 0.05)) < 1e-9
