"""Unit tests for the bicycle model and Stanley controller."""

import math

import pytest

from repro.vehicle import BicycleDynamics, BicycleState, StanleyController


class TestBicycle:
    def test_validation(self):
        with pytest.raises(ValueError):
            BicycleDynamics(wheelbase=0.0)
        with pytest.raises(ValueError):
            BicycleDynamics(max_steering=0.0)
        with pytest.raises(ValueError):
            BicycleDynamics(steering_lag=-0.1)

    def test_straight_line(self):
        d = BicycleDynamics()
        s = BicycleState()
        for _ in range(100):
            d.step(s, 0.0, speed=5.0, dt=0.01)
        assert s.x == pytest.approx(5.0)
        assert s.y == pytest.approx(0.0)
        assert s.heading == pytest.approx(0.0)

    def test_turning_radius_matches_kinematics(self):
        # R = L / tan(delta)
        L, delta = 2.7, 0.2
        d = BicycleDynamics(wheelbase=L)
        s = BicycleState()
        v, dt = 5.0, 0.001
        # Drive half a circle worth of heading change.
        while s.heading < math.pi / 2:
            d.step(s, delta, v, dt)
        expected_r = L / math.tan(delta)
        # At quarter turn the displacement is R*sqrt(2) from start along 45°.
        assert math.hypot(s.x, s.y) == pytest.approx(expected_r * math.sqrt(2), rel=0.02)

    def test_steering_clamp(self):
        d = BicycleDynamics(max_steering=0.3)
        s = BicycleState()
        d.step(s, 5.0, 1.0, 0.01)
        assert s.steering == pytest.approx(0.3)

    def test_steering_lag(self):
        d = BicycleDynamics(steering_lag=0.5)
        s = BicycleState()
        d.step(s, 0.3, 1.0, 0.01)
        assert 0.0 < s.steering < 0.05

    def test_invalid_step_args(self):
        d = BicycleDynamics()
        with pytest.raises(ValueError):
            d.step(BicycleState(), 0.0, 1.0, 0.0)
        with pytest.raises(ValueError):
            d.step(BicycleState(), 0.0, -1.0, 0.01)

    def test_heading_normalized(self):
        d = BicycleDynamics()
        s = BicycleState()
        for _ in range(10000):
            d.step(s, 0.5, 10.0, 0.01)
        assert -math.pi <= s.heading <= math.pi

    def test_copy(self):
        s = BicycleState(x=1.0, heading=0.5)
        c = s.copy()
        c.x = 99.0
        assert s.x == 1.0


class TestStanley:
    def test_validation(self):
        with pytest.raises(ValueError):
            StanleyController(k_offset=-1.0)
        with pytest.raises(ValueError):
            StanleyController(softening=0.0)

    def test_steers_against_positive_offset(self):
        c = StanleyController()
        delta = c.steering_command(
            lateral_offset=1.0, heading_error=0.0, speed=5.0, curvature=0.0, wheelbase=2.7
        )
        assert delta < 0.0  # left of lane -> steer right

    def test_steers_against_heading_error(self):
        c = StanleyController()
        delta = c.steering_command(0.0, heading_error=0.2, speed=5.0, curvature=0.0, wheelbase=2.7)
        assert delta < 0.0

    def test_feedforward_on_curvature(self):
        c = StanleyController()
        delta = c.steering_command(0.0, 0.0, speed=5.0, curvature=1.0 / 15.0, wheelbase=2.7)
        assert delta == pytest.approx(math.atan(2.7 / 15.0))

    def test_zero_everything_is_zero(self):
        c = StanleyController()
        assert c.steering_command(0.0, 0.0, 5.0, 0.0, 2.7) == 0.0

    def test_crosstrack_softening_at_low_speed(self):
        c = StanleyController(k_offset=1.0, k_heading=0.0, softening=1.0)
        slow = c.steering_command(1.0, 0.0, 0.0, 0.0, 2.7)
        fast = c.steering_command(1.0, 0.0, 50.0, 0.0, 2.7)
        assert abs(slow) > abs(fast)
