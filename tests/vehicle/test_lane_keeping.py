"""Unit tests for the lane-keeping plant."""

import pytest

from repro.vehicle import LaneKeepingPlant, OvalTrack


def make_plant(**kwargs):
    return LaneKeepingPlant(
        track=OvalTrack(straight_length=60.0, radius=15.0),
        speed=5.0,
        **kwargs,
    )


def drive(plant, t_end, dt=0.01, command_period=0.05):
    t, next_cmd = 0.0, 0.0
    while t < t_end:
        t = round(t + dt, 10)
        plant.step(t)
        if t >= next_cmd:
            plant.apply_command(plant.compute_command(t, t))
            next_cmd += command_period
    return plant


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            make_plant(command_timeout=0.0)
        with pytest.raises(ValueError):
            make_plant(max_offset=0.0)
        with pytest.raises(ValueError):
            LaneKeepingPlant(speed=0.0)

    def test_initial_offset_applied(self):
        p = make_plant(initial_offset=0.5)
        assert p.tracking_error() == pytest.approx(0.5, abs=0.02)

    def test_time_monotone(self):
        p = make_plant()
        p.step(0.5)
        with pytest.raises(ValueError):
            p.step(0.1)


class TestClosedLoop:
    def test_straight_driving_stays_centred(self):
        p = drive(make_plant(), 5.0)  # still on the first straight
        assert abs(p.tracking_error()) < 0.01

    def test_recovers_from_initial_offset(self):
        p = drive(make_plant(initial_offset=0.8), 8.0)
        assert abs(p.tracking_error()) < 0.05

    def test_survives_the_turns(self):
        # One full lap with frequent fresh commands.
        p = make_plant()
        lap_time = p.track.length / p.speed
        drive(p, lap_time)
        assert not p.departed
        assert max(abs(o) for _, o in p.offset_series()) < 1.0

    def test_turn_offsets_nonzero_straights_zero(self):
        p = make_plant()
        lap_time = p.track.length / p.speed
        drive(p, lap_time)
        turn = p.turn_offsets()
        assert turn, "the lap crosses the turns"
        from repro.analysis.stats import rms

        # Offsets are larger on the turns than on the first straight.
        first_straight = [o for s, o in p.offset_by_arc_series() if s < 50.0]
        assert rms(turn) > rms(first_straight)


class TestFailureModes:
    def test_departure_flag_and_saturation(self):
        # No commands at all: the car goes straight and leaves at the turn.
        p = make_plant(command_timeout=1e9, max_offset=3.0)
        t = 0.0
        while t < 30.0:
            t = round(t + 0.01, 10)
            p.step(t)
        assert p.departed
        assert p.departure_time is not None
        assert max(abs(o) for _, o in p.offset_series()) <= 3.0 + 1e-9

    def test_watchdog_recentres_steering(self):
        from repro.vehicle.lateral import SteeringCommand

        p = make_plant(command_timeout=0.2)
        p.apply_command(SteeringCommand(steering=0.5, computed_at=0.0, sense_time=0.0))
        for k in range(1, 101):
            p.step(k * 0.01)
        # After the watchdog fires, the actual wheel returns to ~0.
        assert abs(p.state.steering) < 0.05


class TestSnapshots:
    def test_snapshot_at_past(self):
        p = drive(make_plant(initial_offset=0.5), 3.0)
        old = p.snapshot_at(0.0)
        assert old.lateral_offset == pytest.approx(0.5, abs=0.05)

    def test_stale_command_differs_from_fresh(self):
        p = drive(make_plant(initial_offset=0.5), 3.0)
        fresh = p.compute_command(3.0, 3.0)
        stale = p.compute_command(0.0, 3.0)
        assert fresh.steering != pytest.approx(stale.steering)

    def test_series_accessors(self):
        p = drive(make_plant(), 2.0)
        assert len(p.offset_series()) == len(p.times())
        assert len(p.offset_by_arc_series()) == len(p.times())
