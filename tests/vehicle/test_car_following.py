"""Unit tests for the car-following plant."""

import pytest

from repro.vehicle import (
    ACCController,
    CarFollowingPlant,
    ConstantSpeed,
    GaussianNoise,
    LongitudinalDynamics,
    PiecewiseLinearSpeed,
    SineSpeed,
)


def make_plant(profile=None, **kwargs):
    return CarFollowingPlant(
        lead_profile=profile or ConstantSpeed(10.0),
        controller=ACCController(),
        dynamics=LongitudinalDynamics(),
        initial_gap=kwargs.pop("initial_gap", 30.0),
        **kwargs,
    )


def drive(plant, t_end, dt=0.01, command_period=0.1):
    """Step the plant while closing the loop at a fixed command rate."""
    t, next_cmd = 0.0, 0.0
    while t < t_end:
        t = round(t + dt, 10)
        plant.step(t)
        if t >= next_cmd:
            plant.apply_command(plant.compute_command(t, t))
            next_cmd += command_period
    return plant


class TestConstruction:
    def test_initial_state(self):
        p = make_plant()
        assert p.gap == pytest.approx(30.0)
        assert p.follower.speed == pytest.approx(10.0)  # starts at lead speed
        assert not p.collided

    def test_invalid_gap(self):
        with pytest.raises(ValueError):
            make_plant(initial_gap=0.0)

    def test_invalid_timeout(self):
        with pytest.raises(ValueError):
            make_plant(command_timeout=0.0)


class TestStepping:
    def test_time_must_be_monotone(self):
        p = make_plant()
        p.step(1.0)
        with pytest.raises(ValueError, match="backwards"):
            p.step(0.5)

    def test_same_time_is_noop(self):
        p = make_plant()
        p.step(1.0)
        n = len(p.times())
        p.step(1.0)
        assert len(p.times()) == n

    def test_lead_position_integrates_profile(self):
        p = make_plant(ConstantSpeed(10.0))
        drive(p, 1.0)
        assert p.lead_position == pytest.approx(30.0 + 10.0, rel=1e-6)

    def test_gap_constant_at_equal_speeds_without_commands(self):
        p = make_plant(ConstantSpeed(10.0))
        for k in range(1, 101):
            p.step(k * 0.01)  # no commands; both at 10 m/s
        assert p.gap == pytest.approx(30.0, abs=1e-6)


class TestClosedLoop:
    def test_tracks_constant_lead(self):
        p = drive(make_plant(ConstantSpeed(12.0)), 30.0)
        assert abs(p.tracking_error()) < 0.05
        assert p.gap == pytest.approx(p.controller.desired_gap(12.0), abs=0.5)

    def test_tracks_sine_lead(self):
        p = drive(make_plant(SineSpeed(lo=10.0, hi=14.0, period=7.0),
                             initial_gap=25.0), 20.0)
        assert abs(p.tracking_error()) < 2.0
        assert not p.collided

    def test_collision_on_stopped_lead_without_commands(self):
        profile = PiecewiseLinearSpeed([(0.0, 10.0), (1.0, 10.0), (3.0, 0.0)])
        p = CarFollowingPlant(
            lead_profile=profile,
            initial_gap=10.0,
            command_timeout=100.0,  # disable the watchdog
        )
        t = 0.0
        while t < 10.0 and not p.collided:
            t += 0.01
            p.step(t)
        assert p.collided
        assert p.collision_time is not None
        assert min(g for _, g in p.gap_series()) <= 0.0

    def test_watchdog_coasts_without_commands(self):
        p = make_plant(ConstantSpeed(10.0), command_timeout=0.3)
        # Issue one hard-acceleration command, then go silent.
        from repro.vehicle.longitudinal import ACCCommand

        p.apply_command(ACCCommand(accel=3.0, computed_at=0.0, sense_time=0.0))
        drive_speeds = []
        for k in range(1, 301):
            p.step(k * 0.01)
            drive_speeds.append(p.follower.speed)
        # After the timeout the acceleration freezes out (coast).
        assert p.follower.accel == pytest.approx(0.0)
        assert p.follower.speed < 10.0 + 3.0 * 0.5  # bounded runaway


class TestSnapshots:
    def test_snapshot_at_returns_past_state(self):
        p = make_plant(PiecewiseLinearSpeed([(0.0, 10.0), (1.0, 20.0)]))
        drive(p, 1.0)
        old = p.snapshot_at(0.0)
        recent = p.snapshot_at(1.0)
        assert old.v_lead == pytest.approx(10.0)
        assert recent.v_lead == pytest.approx(20.0, abs=0.2)

    def test_snapshot_before_history_clamps_to_first(self):
        p = make_plant()
        snap = p.snapshot_at(-5.0)
        assert snap.t == 0.0

    def test_stale_command_uses_old_lead_state(self):
        p = make_plant(PiecewiseLinearSpeed([(0.0, 10.0), (2.0, 20.0)]))
        drive(p, 2.0)
        fresh = p.compute_command(sense_time=2.0, now=2.0)
        stale = p.compute_command(sense_time=0.0, now=2.0)
        # The stale command thinks the lead is still slow -> brakes harder.
        assert stale.accel < fresh.accel

    def test_noise_applied_to_perception_only(self):
        p = make_plant(speed_noise=GaussianNoise(sigma=0.5, seed=1))
        p.step(0.1)
        cmds = {p.compute_command(0.1, 0.1).accel for _ in range(5)}
        assert len(cmds) > 1  # noisy perception -> varying commands
        # Ground-truth series stay exact.
        assert all(v == pytest.approx(10.0) for _, v, _ in
                   [(s.t, s.v_lead, s.v_follow) for s in [p.snapshot_at(0.1)]])


class TestSeries:
    def test_series_lengths_match(self):
        p = drive(make_plant(), 1.0)
        n = len(p.times())
        assert len(p.speed_error_series()) == n
        assert len(p.distance_error_series()) == n
        assert len(p.gap_series()) == n
        assert len(p.accel_series()) == n
        assert len(p.speed_series()) == n

    def test_distance_error_is_mean_centred(self):
        p = drive(make_plant(SineSpeed(10.0, 14.0, 7.0)), 10.0)
        errors = [e for _, e in p.distance_error_series()]
        assert sum(errors) / len(errors) == pytest.approx(0.0, abs=1e-9)

    def test_mean_gap_positive(self):
        p = drive(make_plant(), 1.0)
        assert p.mean_gap() > 0.0

    def test_gap_regulation_error_series(self):
        p = drive(make_plant(ConstantSpeed(12.0)), 30.0)
        # At convergence, the regulation error approaches zero.
        assert abs(p.gap_regulation_error_series()[-1][1]) < 1.0
