"""The example scripts run end-to-end (subprocess smoke tests)."""

import subprocess
import sys
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, timeout: float = 240.0) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "HCPerf" in out and "EDF" in out
        assert "miss ratio" in out

    def test_custom_scheduler(self):
        out = run_example("custom_scheduler.py")
        assert "LLF" in out and "HCPerf *" in out

    def test_perception_pipeline_demo(self):
        out = run_example("perception_pipeline_demo.py")
        assert "fusion" in out
        # The table has rows for growing obstacle counts.
        assert " 60 " in out or "60" in out

    def test_car_following_demo_short(self):
        out = run_example("car_following_demo.py", "--horizon", "15")
        assert "Speed tracking error" in out

    def test_random_workload_demo(self):
        out = run_example("random_workload_demo.py")
        assert "Random 17-task DAG" in out

    def test_all_examples_exist_and_documented(self):
        scripts = sorted(EXAMPLES.glob("*.py"))
        assert len(scripts) >= 5
        for script in scripts:
            head = script.read_text().split('"""')
            assert len(head) >= 2, f"{script.name} missing module docstring"
            assert "Run:" in head[1], f"{script.name} docstring missing run hint"
