"""Tests for the multi-seed robustness harness."""

import pytest

from repro.experiments.multi_seed import MetricSummary, render, run_multi_seed
from repro.workloads import fig13_car_following


class TestMetricSummary:
    def test_statistics(self):
        s = MetricSummary(scheme="X", values=[1.0, 2.0, 3.0])
        assert s.mean == 2.0
        assert s.std == pytest.approx(1.0)
        assert s.min == 1.0 and s.max == 3.0

    def test_single_value_std_zero(self):
        assert MetricSummary(scheme="X", values=[5.0]).std == 0.0


class TestRunMultiSeed:
    @pytest.fixture(scope="class")
    def result(self):
        # Short horizon, 3 seeds, 2 schemes: fast but meaningful.
        return run_multi_seed(
            lambda: fig13_car_following(horizon=20.0),
            metric=lambda r: r.speed_error_rms(),
            metric_name="speed RMS",
            seeds=range(3),
            schemes=("EDF", "HCPerf"),
        )

    def test_all_schemes_summarized(self, result):
        assert set(result.summaries) == {"EDF", "HCPerf"}
        assert all(len(s.values) == 3 for s in result.summaries.values())

    def test_wins_sum_to_seed_count(self, result):
        assert sum(result.wins.values()) == 3

    def test_win_ratio(self, result):
        total = sum(result.win_ratio(s) for s in result.summaries)
        assert total == pytest.approx(1.0)

    def test_best_scheme(self, result):
        best = result.best_scheme_by_mean()
        assert best in ("EDF", "HCPerf")

    def test_render(self, result):
        out = render(result)
        assert "speed RMS" in out and "wins" in out

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            run_multi_seed(
                lambda: fig13_car_following(horizon=5.0),
                metric=lambda r: 0.0,
                seeds=[],
            )


class TestFleetBackend:
    def test_fleet_form_matches_legacy_serial(self):
        """The rewired harness: name+key form == factory+callable form."""
        legacy = run_multi_seed(
            lambda: fig13_car_following(horizon=5.0),
            metric=lambda r: r.speed_error_rms(),
            metric_name="speed_error_rms",
            seeds=range(2),
            schemes=("EDF", "HCPerf"),
        )
        fleet = run_multi_seed(
            "fig13",
            metric="speed_error_rms",
            seeds=range(2),
            schemes=("EDF", "HCPerf"),
            overrides={"horizon": 5.0},
            jobs=2,
        )
        assert render(fleet) == render(legacy)

    def test_fleet_form_persists_and_resumes(self, tmp_path):
        store = tmp_path / "ms.jsonl"
        kwargs = dict(
            metric="speed_error_rms",
            seeds=range(2),
            schemes=("EDF",),
            overrides={"horizon": 5.0},
            store=store,
        )
        first = run_multi_seed("fig13", **kwargs)
        mtime = store.stat().st_mtime_ns
        second = run_multi_seed("fig13", **kwargs)  # all jobs resumed
        assert render(first) == render(second)
        assert store.stat().st_mtime_ns == mtime  # nothing recomputed

    def test_jobs_require_fleet_form(self):
        with pytest.raises(ValueError, match="fleet form"):
            run_multi_seed(
                lambda: fig13_car_following(horizon=5.0),
                metric=lambda r: 0.0,
                seeds=range(2),
                jobs=2,
            )
