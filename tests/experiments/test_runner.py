"""Tests for the generic experiment runner."""

import pytest

from repro.experiments.runner import DEFAULT_SCHEMES, compare_schedulers, run_scenario
from repro.workloads import fig13_car_following, lane_keeping_loop


HORIZON = 6.0  # short: enough to exercise the machinery, fast in CI


class TestRunScenario:
    @pytest.mark.parametrize("scheme", DEFAULT_SCHEMES)
    def test_all_schemes_run(self, scheme):
        r = run_scenario(fig13_car_following(horizon=HORIZON), scheme, seed=0)
        assert r.scheduler == scheme
        assert r.horizon == pytest.approx(HORIZON, abs=0.2)
        assert 0.0 <= r.overall_miss_ratio() <= 1.0
        assert r.control_throughput() > 0.0
        assert r.speed_error_rms() >= 0.0
        assert r.distance_error_rms() >= 0.0

    def test_lane_keeping_metrics(self):
        r = run_scenario(lane_keeping_loop(horizon=HORIZON), "EDF", seed=0)
        assert r.lateral_offset_rms() >= 0.0
        with pytest.raises(TypeError):
            r.speed_error_rms()

    def test_car_following_rejects_lateral_metric(self):
        r = run_scenario(fig13_car_following(horizon=HORIZON), "EDF", seed=0)
        with pytest.raises(TypeError):
            r.lateral_offset_rms()

    def test_scheduler_instance_accepted(self):
        from repro.schedulers import EDFScheduler

        r = run_scenario(fig13_car_following(horizon=HORIZON), EDFScheduler(), seed=0)
        assert r.scheduler == "EDF"

    def test_hcperf_records_gamma_history(self):
        r = run_scenario(fig13_car_following(horizon=HORIZON), "HCPerf", seed=0)
        assert r.gamma_history
        assert all(g >= 0.0 for _, g in r.gamma_history)

    def test_baseline_has_no_gamma_history(self):
        r = run_scenario(fig13_car_following(horizon=HORIZON), "EDF", seed=0)
        assert r.gamma_history == []

    def test_determinism(self):
        a = run_scenario(fig13_car_following(horizon=HORIZON), "EDF", seed=5)
        b = run_scenario(fig13_car_following(horizon=HORIZON), "EDF", seed=5)
        assert a.speed_error_rms() == b.speed_error_rms()
        assert a.overall_miss_ratio() == b.overall_miss_ratio()

    def test_seed_changes_outcome(self):
        a = run_scenario(fig13_car_following(horizon=HORIZON), "EDF", seed=1)
        b = run_scenario(fig13_car_following(horizon=HORIZON), "EDF", seed=2)
        assert a.speed_error_rms() != b.speed_error_rms()

    def test_miss_series_time_ordered(self):
        r = run_scenario(fig13_car_following(horizon=HORIZON), "EDF", seed=0)
        times = [t for t, _ in r.miss_ratio_series()]
        assert times == sorted(times)

    def test_discomfort_report(self):
        r = run_scenario(fig13_car_following(horizon=HORIZON), "EDF", seed=0)
        report = r.discomfort_report()
        assert report.rms_jerk >= 0.0


class TestCompare:
    def test_compare_runs_all_schemes(self):
        results = compare_schedulers(
            lambda: fig13_car_following(horizon=HORIZON), seed=0
        )
        assert set(results) == set(DEFAULT_SCHEMES)

    def test_compare_subset(self):
        results = compare_schedulers(
            lambda: fig13_car_following(horizon=HORIZON),
            schemes=("EDF", "HPF"),
            seed=0,
        )
        assert set(results) == {"EDF", "HPF"}
