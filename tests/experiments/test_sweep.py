"""Tests for the fusion-cost sensitivity sweep."""

import pytest

from repro.experiments import sweep


class TestSweep:
    @pytest.fixture(scope="class")
    def result(self):
        return sweep.run_fusion_sweep(
            elevations_ms=(20.0, 45.0),
            schemes=("EDF", "HCPerf"),
            horizon=25.0,
            seed=1,
        )

    def test_points_per_elevation(self, result):
        assert [p.elevated_ms for p in result.points] == [20.0, 45.0]

    def test_all_schemes_recorded(self, result):
        for p in result.points:
            assert set(p.speed_rms) == {"EDF", "HCPerf"}
            assert set(p.miss_ratio) == {"EDF", "HCPerf"}

    def test_advantage_metric(self, result):
        p = result.points[-1]
        expected = p.speed_rms["EDF"] / p.speed_rms["HCPerf"]
        assert p.advantage("EDF") == pytest.approx(expected)

    def test_advantage_grows_with_overload(self, result):
        assert result.advantage_grows("EDF")

    def test_deeper_overload_more_baseline_misses(self, result):
        assert (
            result.points[-1].miss_ratio["EDF"]
            > result.points[0].miss_ratio["EDF"]
        )

    def test_render(self, result):
        out = sweep.render(result)
        assert "20 ms" in out and "45 ms" in out and "advantage" in out

    def test_empty_elevations_rejected(self):
        with pytest.raises(ValueError):
            sweep.run_fusion_sweep(elevations_ms=())


class TestSweepFleetBackend:
    def test_parallel_matches_serial(self):
        kwargs = dict(
            elevations_ms=(20.0, 45.0), schemes=("EDF", "HCPerf"),
            horizon=15.0, seed=1,
        )
        serial = sweep.run_fusion_sweep(**kwargs)
        parallel = sweep.run_fusion_sweep(jobs=4, **kwargs)
        assert sweep.render(serial) == sweep.render(parallel)

    def test_store_enables_resume(self, tmp_path):
        store = tmp_path / "sweep.jsonl"
        kwargs = dict(
            elevations_ms=(20.0,), schemes=("EDF", "HCPerf"), horizon=12.0, seed=1,
            store=store,
        )
        first = sweep.run_fusion_sweep(**kwargs)
        mtime = store.stat().st_mtime_ns
        second = sweep.run_fusion_sweep(**kwargs)
        assert sweep.render(first) == sweep.render(second)
        assert store.stat().st_mtime_ns == mtime
