"""The heterogeneous-platform experiment and its committed results.

``examples/heterogeneous_results.json`` is the seeded outcome this
reproduction commits to: on the typed ``2xCPU+1xGPU@3`` platform the three
schedulers separate on miss ratio while the homogeneous 3xCPU baseline
absorbs the same workload uniformly.  One cell is replayed live to prove
the committed numbers are reproducible from (seed, horizon) alone.
"""

import json
from pathlib import Path

import pytest

from repro.experiments import heterogeneous as het

RESULTS_PATH = Path(__file__).parents[2] / "examples" / "heterogeneous_results.json"


@pytest.fixture(scope="module")
def committed():
    assert RESULTS_PATH.exists(), "committed experiment results missing"
    return json.loads(RESULTS_PATH.read_text())


class TestCommittedResults:
    def test_schema(self, committed):
        assert committed["experiment"] == het.EXPERIMENT_ID
        assert committed["profiles"] == dict(het.PROFILES)
        for axis in ("miss_ratio", "speed_error_rms"):
            assert set(committed[axis]) == set(het.PROFILES)
            for by_scheme in committed[axis].values():
                assert set(by_scheme) == set(het.SCHEMES)

    def test_heterogeneous_platform_separates_the_schedulers(self, committed):
        """The acceptance claim: typed platforms produce *different* seeded
        miss-ratio outcomes per scheduler, unlike the homogeneous baseline."""
        miss = committed["miss_ratio"]
        hetero = miss["heterogeneous"]
        homo = miss["homogeneous"]
        # baseline: uniform (the 3xCPU platform absorbs the load)
        assert len(set(homo.values())) == 1
        # typed platform: every scheduler lands somewhere different
        assert len(set(hetero.values())) == len(het.SCHEMES)
        # and the platform change moved every scheduler's outcome
        assert all(hetero[s] != homo[s] for s in het.SCHEMES)

    def test_hcperf_degrades_least_on_the_typed_platform(self, committed):
        hetero = committed["miss_ratio"]["heterogeneous"]
        assert hetero["HCPerf"] == min(hetero.values())


class TestReplay:
    def test_one_cell_reproduces_the_committed_number(self, committed):
        from repro.experiments.runner import run_scenario

        scenario = het.build_scenario("heterogeneous", horizon=committed["horizon"])
        result = run_scenario(scenario, "HCPerf", seed=committed["seed"])
        recorded = committed["miss_ratio"]["heterogeneous"]["HCPerf"]
        assert result.overall_miss_ratio() == pytest.approx(recorded, abs=0.0)


class TestScenarioBuilder:
    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown profile"):
            het.build_scenario("quantum")

    def test_platforms_have_equal_unit_counts(self):
        homo = het.build_scenario("homogeneous", horizon=5.0)
        hetero = het.build_scenario("heterogeneous", horizon=5.0)
        assert homo.sim.n_processors == hetero.sim.n_processors == 3

    def test_heterogeneous_graph_is_typed(self):
        scenario = het.build_scenario("heterogeneous", horizon=5.0)
        graph = scenario.graph_factory()
        gpu_tasks = [t.name for t in graph if t.affinity == frozenset({"GPU"})]
        assert sorted(gpu_tasks) == [
            "camera_object_detection", "lidar_object_detection",
        ]

    def test_homogeneous_graph_is_untyped(self):
        scenario = het.build_scenario("homogeneous", horizon=5.0)
        graph = scenario.graph_factory()
        assert all(t.affinity is None for t in graph)

    def test_render_mentions_the_verdict(self):
        result = het.run(seed=0, horizon=5.0)
        out = het.render(result)
        assert "Verdict:" in out
