"""The Fig. 5 toy example must match the paper exactly."""


from repro.experiments import fig05_toy


class TestFig05:
    def test_paper_numbers_exact(self):
        result = fig05_toy.run()
        assert result.adaptive_commands == [7.0, 8.0, 9.0]
        assert result.preferred_commands == [3.0, 6.0, 9.0]

    def test_both_schedules_meet_all_deadlines(self):
        result = fig05_toy.run()
        assert result.adaptive_misses == []
        assert result.preferred_misses == []

    def test_nine_jobs(self):
        assert len(fig05_toy.paper_jobs()) == 9

    def test_adaptive_is_edf_order(self):
        jobs = fig05_toy.paper_jobs()
        schedule = fig05_toy.schedule_adaptive(jobs)
        deadlines = [j.deadline for j, _ in schedule]
        assert deadlines == sorted(deadlines)

    def test_preferred_is_cycle_major(self):
        jobs = fig05_toy.paper_jobs()
        schedule = fig05_toy.schedule_preferred(jobs)
        cycles = [j.cycle for j, _ in schedule]
        assert cycles == [1, 1, 1, 2, 2, 2, 3, 3, 3]

    def test_command_times_per_cycle(self):
        jobs = fig05_toy.paper_jobs()
        sched = fig05_toy.schedule_preferred(jobs)
        assert fig05_toy.command_times(sched) == [3.0, 6.0, 9.0]

    def test_render_contains_both_rows(self):
        out = fig05_toy.render(fig05_toy.run())
        assert "adaptive" in out and "preferred" in out and "none" in out

    def test_deadline_miss_detection(self):
        # Swap deadlines so the cycle-major order misses t1-1's 1 s deadline.
        jobs = [fig05_toy.ToyJob(task=2, cycle=1, deadline=1.0)] * 2
        schedule = fig05_toy._simulate(jobs)
        assert fig05_toy.deadline_misses(schedule) == ["t2-1"]
