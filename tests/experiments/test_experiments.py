"""Smoke + claim tests for every experiment module.

These run the experiments on reduced horizons where possible; the headline
reproduction claims (HCPerf wins, misses regulated to zero, collision in the
motivation) are asserted on horizons long enough for the effects to appear.
"""

import pytest

from repro.experiments import (
    EXPERIMENTS,
    fig04_motivation,
    fig12_exectime,
    fig13_car_following,
    fig14_lane_keeping,
    fig15_hardware,
    fig17_responsiveness,
    fig18_ablation,
    overhead,
)


class TestRegistry:
    def test_all_eleven_registered(self):
        assert len(EXPERIMENTS) == 11
        for module in EXPERIMENTS.values():
            assert hasattr(module, "run") and hasattr(module, "render")

    def test_ids_match_modules(self):
        for exp_id, module in EXPERIMENTS.items():
            assert module.EXPERIMENT_ID == exp_id


class TestFig04:
    @pytest.fixture(scope="class")
    def result(self):
        return fig04_motivation.run(seed=1, horizon=30.0)

    def test_fixed_priority_collides(self, result):
        assert result.collided("Apollo")
        assert result.collision_time("Apollo") is not None

    def test_hcperf_avoids_collision(self, result):
        assert not result.collided("HCPerf")

    def test_miss_ratio_rises_after_braking(self, result):
        series = result.miss_series("Apollo")
        before = [m for t, m in series if t <= 5.0]
        after = [m for t, m in series if 8.0 <= t <= 20.0]
        assert max(before, default=0.0) <= 0.05
        assert max(after) > 0.1

    def test_render(self, result):
        out = fig04_motivation.render(result)
        assert "collision" in out and "Apollo" in out


class TestFig12:
    def test_stats_cover_all_tasks(self):
        result = fig12_exectime.run(seed=0, samples=50)
        assert len(result.stats) == 23
        for lo, mu, hi in result.stats.values():
            assert 0.0 <= lo <= mu <= hi

    def test_fusion_sweep_monotone(self):
        result = fig12_exectime.run(seed=0, samples=100)
        means = [c for _, c in result.fusion_vs_complexity]
        assert means == sorted(means)
        assert means[-1] > 2 * means[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            fig12_exectime.run(samples=0)

    def test_render(self):
        out = fig12_exectime.render(fig12_exectime.run(seed=0, samples=20))
        assert "sensor" in out.lower() and "obstacles" in out


class TestFig13:
    @pytest.fixture(scope="class")
    def result(self):
        # 40 s covers the onset of the elevated window and the adaptation.
        return fig13_car_following.run(seed=1, horizon=40.0)

    def test_hcperf_best_speed_rms(self, result):
        assert result.hcperf_wins()

    def test_hcperf_regulates_misses_to_zero(self, result):
        miss = dict(result.miss_series()["HCPerf"])
        late = [m for t, m in miss.items() if t > 15.0]
        assert sum(late) / len(late) < 0.01

    def test_baselines_miss_during_window(self, result):
        for scheme in ("HPF", "EDF", "EDF-VD", "Apollo"):
            window = [m for t, m in result.miss_series()[scheme] if 12.0 < t <= 40.0]
            assert sum(window) / len(window) > 0.01, scheme

    def test_distance_rms_ordering(self, result):
        dist = result.distance_rms()
        assert dist["HCPerf"] == min(dist.values())

    def test_render(self, result):
        out = fig13_car_following.render(result)
        assert "Table II" in out and "Table III" in out and "HCPerf" in out


class TestFig14:
    @pytest.fixture(scope="class")
    def result(self):
        return fig14_lane_keeping.run(seed=1, horizon=70.0)

    def test_hcperf_best_offset(self, result):
        assert result.hcperf_wins()

    def test_offsets_concentrated_on_turns(self, result):
        for scheme in ("HPF", "EDF", "EDF-VD", "HCPerf"):
            assert result.turn_offset_rms()[scheme] >= result.offset_rms()[scheme] * 0.9

    def test_apollo_worst(self, result):
        rms = result.offset_rms()
        assert rms["Apollo"] == max(rms.values())

    def test_render(self, result):
        out = fig14_lane_keeping.render(result)
        assert "Table IV" in out


class TestFig15:
    @pytest.fixture(scope="class")
    def result(self):
        return fig15_hardware.run(seed=1, horizon=20.0)

    def test_hcperf_best(self, result):
        assert result.hcperf_wins()

    def test_hcperf_zero_misses_after_adjustment(self, result):
        series = result.miss_series()["HCPerf"]
        late = [m for t, m in series if t > 5.0]
        assert sum(late) / len(late) < 0.01

    def test_baselines_miss_throughout(self, result):
        for scheme in ("HPF", "EDF", "EDF-VD", "Apollo"):
            series = [m for _, m in result.miss_series()[scheme]]
            assert sum(series) / len(series) > 0.003, scheme

    def test_render(self, result):
        out = fig15_hardware.render(result)
        assert "Table V" in out and "Table VI" in out


class TestFig17:
    @pytest.fixture(scope="class")
    def result(self):
        return fig17_responsiveness.run(seed=1, horizon=40.0)

    def test_error_spikes_then_mitigated(self, result):
        assert result.phase("during").peak_error > result.phase("before").peak_error
        assert result.error_mitigated()

    def test_control_stays_responsive(self, result):
        assert result.responsive_during_jam()

    def test_gamma_rises_with_the_error(self, result):
        assert result.gamma_raised_during_jam()

    def test_throughput_sacrificed_during_jam(self, result):
        assert result.phase("during").throughput < result.phase("before").throughput

    def test_discomfort_recovers_after_jam(self, result):
        assert result.phase("after").discomfort < result.phase("during").discomfort

    def test_render(self, result):
        out = fig17_responsiveness.render(result)
        assert "jam" in out


class TestFig18:
    @pytest.fixture(scope="class")
    def result(self):
        return fig18_ablation.run(seed=1, horizon=40.0)

    def test_external_coordinator_regulates_misses(self, result):
        assert result.external_helps()
        assert result.steady_miss_ratio()["HCPerf (full)"] < 0.01

    def test_internal_only_keeps_low_persistent_misses(self, result):
        internal = result.steady_miss_ratio()["Internal only"]
        assert 0.0 < internal < 0.2

    def test_render(self, result):
        out = fig18_ablation.render(result)
        assert "External Coordinator" in out


class TestOverhead:
    def test_overhead_small(self):
        result = overhead.run(seed=0, queue_depth=24, iterations=50)
        # The paper reports < 5 ms per 1 s period; allow slack for slow CI.
        assert result.per_second_budget() < 0.050
        assert result.coordination_step > 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            overhead.run(queue_depth=0)
        with pytest.raises(ValueError):
            overhead.OverheadResult(
                queue_depth=1, iterations=1, mfc_step=0.0,
                gamma_resolve=0.0, rate_adapter_step=0.0,
            ).per_second_budget(0.0)

    def test_render(self):
        out = overhead.render(overhead.run(seed=0, iterations=10))
        assert "5 ms" in out


class TestFig13Charts:
    def test_render_charts(self):
        result = fig13_car_following.run(seed=1, horizon=15.0)
        out = fig13_car_following.render_charts(result)
        assert "Fig. 13(a)" in out and "Fig. 13(b)" in out
        assert "lead" in out and "HCPerf" in out


class TestResilience:
    def test_smoke_and_claims(self):
        from repro.experiments import resilience

        result = resilience.run(seed=0, horizon=40.0)
        assert set(result.reports) == {"EDF", "HCPerf"}
        out = resilience.render(result)
        assert "Recovery claims" in out
        assert "Recovery curves" in out

    def test_full_horizon_claims_hold(self):
        # The acceptance claims of the resilience story, at the canonical
        # suite's intended 90 s horizon.
        from repro.experiments import resilience

        result = resilience.run(seed=0)
        assert result.hcperf_no_slower()
        assert result.hcperf_degrades_less()
