"""Append-only JSONL result store."""

import json
import logging

from repro.fleet import ResultStore
from repro.obs import LOGGER_NAME


def _rec(i):
    return {"job_id": f"job{i}", "job": {"seed": i}, "summary": {"metric": float(i)}}


class TestResultStore:
    def test_append_and_load(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        for i in range(3):
            store.append(_rec(i))
        assert len(store) == 3
        assert "job1" in store
        assert "nope" not in store
        ids = store.job_ids()
        assert ids["job2"]["summary"]["metric"] == 2.0

    def test_missing_file_is_empty(self, tmp_path):
        store = ResultStore(tmp_path / "absent.jsonl")
        assert store.records() == []
        assert len(store) == 0

    def test_in_memory_store(self):
        store = ResultStore(None)
        store.append(_rec(0))
        assert len(store) == 1 and "job0" in store

    def test_torn_tail_skipped_and_not_glued(self, tmp_path):
        path = tmp_path / "s.jsonl"
        store = ResultStore(path)
        store.append(_rec(0))
        with open(path, "a") as fh:
            fh.write('{"job_id": "torn", "summ')  # kill mid-write, no newline
        assert [r["job_id"] for r in store.records()] == ["job0"]
        # the next append must start a fresh line, not extend the torn one
        store.append(_rec(1))
        assert sorted(r["job_id"] for r in store.records()) == ["job0", "job1"]

    def test_garbage_lines_skipped(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text('not json\n{"no_id": 1}\n\n' + json.dumps(_rec(5)) + "\n")
        assert [r["job_id"] for r in ResultStore(path).records()] == ["job5"]

    def test_torn_line_warns_through_obs_channel(self, tmp_path, caplog):
        # Recovery must not be silent: every skipped line surfaces as a
        # structured warning on the repro.obs logger, naming file and line.
        path = tmp_path / "s.jsonl"
        store = ResultStore(path)
        store.append(_rec(0))
        with open(path, "a") as fh:
            fh.write('{"job_id": "torn", "summ')
        with caplog.at_level(logging.WARNING, logger=LOGGER_NAME):
            assert [r["job_id"] for r in store.records()] == ["job0"]
        (record,) = caplog.records
        assert record.name == LOGGER_NAME
        message = record.getMessage()
        assert "store.torn_line" in message
        assert str(path) in message and "line=2" in message

    def test_bad_record_warns_through_obs_channel(self, tmp_path, caplog):
        path = tmp_path / "s.jsonl"
        path.write_text('{"no_id": 1}\n' + json.dumps(_rec(5)) + "\n")
        with caplog.at_level(logging.WARNING, logger=LOGGER_NAME):
            assert [r["job_id"] for r in ResultStore(path).records()] == ["job5"]
        messages = [r.getMessage() for r in caplog.records]
        assert any("store.bad_record" in m and "line=1" in m for m in messages)

    def test_duplicate_job_id_last_wins(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        store.append(_rec(0))
        newer = _rec(0)
        newer["summary"]["metric"] = 99.0
        store.append(newer)
        (record,) = store.records()
        assert record["summary"]["metric"] == 99.0

    def test_record_without_job_id_rejected(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        try:
            store.append({"summary": {}})
        except ValueError:
            pass
        else:
            raise AssertionError("expected ValueError")
