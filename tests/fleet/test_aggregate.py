"""Aggregation: store → cells, tables, and the multi-seed bridge."""

import pytest

from repro.fleet import (
    CampaignSpec,
    ResultStore,
    load_groups,
    render_group,
    render_store,
    run_campaign,
    to_multi_seed_result,
)
from repro.fleet.aggregate import CellStats, pick_metric


def synthetic_store(values):
    """Store with records for {(scheduler, seed): metric} of one cell."""
    store = ResultStore(None)
    for (scheduler, seed), value in values.items():
        store.append(
            {
                "job_id": f"{scheduler}-{seed}",
                "job": {
                    "scenario": "fig13",
                    "scheduler": scheduler,
                    "seed": seed,
                    "overrides": {},
                },
                "summary": {"speed_error_rms": value, "overall_miss_ratio": 0.0},
            }
        )
    return store


class TestCellStats:
    def test_statistics(self):
        cell = CellStats(
            scenario="s", scheduler="EDF", overrides={}, seeds=[0, 1, 2],
            values=[1.0, 2.0, 3.0],
        )
        assert cell.mean == 2.0
        assert cell.std == pytest.approx(1.0)
        # t(df=2) = 4.303 -> ci95 = 4.303 * 1.0 / sqrt(3)
        assert cell.ci95 == pytest.approx(4.303 / 3 ** 0.5, rel=1e-6)
        assert cell.min == 1.0 and cell.max == 3.0


class TestLoadGroups:
    def test_groups_and_wins(self):
        store = synthetic_store(
            {
                ("EDF", 0): 2.0, ("EDF", 1): 1.0,
                ("HCPerf", 0): 1.0, ("HCPerf", 1): 2.0,
            }
        )
        (group,) = load_groups(store, schemes=("EDF", "HCPerf"))
        assert group.metric == "speed_error_rms"
        assert group.seeds == [0, 1]
        assert group.wins() == {"EDF": 1, "HCPerf": 1}

    def test_order_independent_of_store_order(self):
        values = {("EDF", 0): 2.0, ("HPF", 0): 1.0, ("EDF", 1): 4.0, ("HPF", 1): 3.0}
        fwd = synthetic_store(values)
        rev = ResultStore(None)
        for record in reversed(fwd.records()):
            rev.append(record)
        assert render_store(fwd) == render_store(rev)

    def test_incomplete_seed_never_wins_by_forfeit(self):
        store = synthetic_store(
            {("EDF", 0): 2.0, ("EDF", 1): 2.0, ("HCPerf", 0): 1.0}
        )
        (group,) = load_groups(store)
        # seed 1 has no HCPerf record yet -> only seed 0 is scored
        assert group.wins() == {"EDF": 0, "HCPerf": 1}

    def test_explicit_metric_and_missing_metric(self):
        store = synthetic_store({("EDF", 0): 2.0})
        (group,) = load_groups(store, metric="overall_miss_ratio")
        assert group.metric == "overall_miss_ratio"
        with pytest.raises(KeyError):
            load_groups(store, metric="no_such_metric")

    def test_pick_metric_preference(self):
        assert pick_metric([{"speed_error_rms": 1, "overall_miss_ratio": 0}]) == (
            "speed_error_rms"
        )
        assert pick_metric([{"lateral_offset_rms": 1}]) == "lateral_offset_rms"
        with pytest.raises(ValueError):
            pick_metric([{"unrelated": 1}])


class TestRender:
    def test_render_marks_winner_and_charts_seeds(self):
        store = synthetic_store(
            {
                ("EDF", 0): 2.0, ("EDF", 1): 2.5,
                ("HCPerf", 0): 1.0, ("HCPerf", 1): 1.5,
            }
        )
        (group,) = load_groups(store, schemes=("EDF", "HCPerf"))
        out = render_group(group)
        assert "HCPerf *" in out and "wins" in out
        assert "per seed" in out  # chart present with >1 seed
        assert "per seed" not in render_group(group, chart=False)

    def test_empty_store(self):
        assert render_store(ResultStore(None)) == "(store is empty)"


class TestMultiSeedBridge:
    def test_matches_serial_multi_seed_exactly(self):
        """fleet report reproduces the serial multi_seed numbers."""
        from repro.experiments.multi_seed import render, run_multi_seed
        from repro.workloads import fig13_car_following

        schemes = ("EDF", "HCPerf")
        serial = run_multi_seed(
            lambda: fig13_car_following(horizon=5.0),
            metric=lambda r: r.speed_error_rms(),
            metric_name="speed_error_rms",
            seeds=range(2),
            schemes=schemes,
        )
        store = ResultStore(None)
        run_campaign(
            CampaignSpec(
                scenarios=["fig13"], schedulers=list(schemes), seeds=[0, 1],
                variants=[{"horizon": 5.0}],
            ),
            store=store,
            jobs=2,
        )
        (group,) = load_groups(store, schemes=schemes)
        assert render(to_multi_seed_result(group)) == render(serial)
