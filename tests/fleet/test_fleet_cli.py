"""``hcperf fleet`` CLI subcommands."""

import json

import pytest

from repro.cli import main

ARGS = [
    "--scenarios", "fig13",
    "--schedulers", "EDF,HCPerf",
    "--seeds", "0,1",
    "--horizon", "5",
    "--name", "clitest",
]


@pytest.fixture
def store(tmp_path):
    return str(tmp_path / "clitest.jsonl")


class TestFleetRun:
    def test_run_writes_store_and_reports(self, store, capsys):
        rc = main(["fleet", "run", *ARGS, "--store", store, "--jobs", "2", "--report"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "4 run, 0 resumed, 0 remaining" in out
        assert "speed_error_rms" in out  # --report table
        records = [json.loads(ln) for ln in open(store)]
        assert len(records) == 4
        assert {r["job"]["scheduler"] for r in records} == {"EDF", "HCPerf"}

    def test_interrupted_run_resumes(self, store, capsys):
        rc = main(["fleet", "run", *ARGS, "--store", store, "--max-jobs", "3"])
        assert rc == 1  # incomplete
        assert "3 run" in capsys.readouterr().out
        rc = main(["fleet", "run", *ARGS, "--store", store, "--jobs", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "1 run, 3 resumed" in out

    def test_spec_file(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(
            json.dumps(
                {
                    "name": "fromfile",
                    "scenarios": ["fig13"],
                    "schedulers": ["EDF"],
                    "seeds": [0],
                    "variants": [{"horizon": 5.0}],
                }
            )
        )
        store = str(tmp_path / "s.jsonl")
        rc = main(["fleet", "run", "--spec", str(spec_path), "--store", store])
        assert rc == 0
        assert "campaign fromfile" in capsys.readouterr().out


class TestFleetStatus:
    def test_status_before_and_after(self, store, capsys):
        rc = main(["fleet", "status", *ARGS, "--store", store])
        out = capsys.readouterr().out
        assert rc == 1 and "done    : 0/4" in out and out.count("pending") == 4
        main(["fleet", "run", *ARGS, "--store", store])
        capsys.readouterr()
        rc = main(["fleet", "status", *ARGS, "--store", store])
        assert rc == 0
        assert "done    : 4/4" in capsys.readouterr().out


class TestFleetReport:
    def test_report_from_store(self, store, capsys):
        main(["fleet", "run", *ARGS, "--store", store])
        capsys.readouterr()
        rc = main(["fleet", "report", "--store", store])
        out = capsys.readouterr().out
        assert rc == 0
        assert "speed_error_rms over 2 seed(s)" in out
        assert "per seed" in out

    def test_report_no_chart_and_metric(self, store, capsys):
        main(["fleet", "run", *ARGS, "--store", store])
        capsys.readouterr()
        rc = main(
            ["fleet", "report", "--store", store, "--metric", "overall_miss_ratio",
             "--no-chart"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "overall_miss_ratio" in out and "per seed" not in out

    def test_list_mentions_fleet(self, capsys):
        main(["list"])
        assert "hcperf fleet" in capsys.readouterr().out
