"""Job execution and config-override application."""

import pytest

from repro.fleet import Job, build_scenario, execute_job


class TestBuildScenario:
    def test_plain_scenario(self):
        scenario = build_scenario("fig13", {})
        assert scenario.name == "fig13_car_following"
        assert scenario.sim.horizon == 90.0

    def test_horizon_override(self):
        assert build_scenario("fig13", {"horizon": 12.0}).sim.horizon == 12.0

    def test_platform_overrides(self):
        scenario = build_scenario(
            "fig13", {"n_processors": 4, "coordination_period": 0.25}
        )
        assert scenario.sim.n_processors == 4
        assert scenario.sim.coordination_period == 0.25

    def test_fusion_override_swaps_graph(self):
        from repro.workloads.profiles import FUSION_TASK

        scenario = build_scenario(
            "fig13",
            {"horizon": 20.0, "fusion_elevated_ms": 60.0, "fusion_t_on": 2.0},
        )
        graph = scenario.graph_factory()
        model = graph.task(FUSION_TASK).exec_model
        # step model elevated window: [t_on, t_off) with t_off = horizon
        assert model.t_on == 2.0 and model.t_off == 20.0

    def test_processor_profile_override(self):
        from repro.rt import ProcessorProfile

        scenario = build_scenario("fig13", {"processor_profile": "2xCPU+1xGPU@3"})
        assert scenario.sim.n_processors == 3
        profile = scenario.sim.processor_profile
        assert isinstance(profile, ProcessorProfile)
        assert profile.describe() == "2xCPU+1xGPU@3"

    def test_processor_profile_is_a_campaign_axis(self):
        from repro.fleet.spec import CampaignSpec

        spec = CampaignSpec(
            variants=[{"processor_profile": "2xCPU"},
                      {"processor_profile": "1xCPU+1xGPU@2"}],
            seeds=(0,),
        )
        assert spec.n_jobs == 2 * len(spec.schedulers)

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError):
            build_scenario("warp", {})


class TestExecuteJob:
    def test_record_shape(self):
        job = Job(scenario="fig13", scheduler="EDF", seed=3,
                  overrides={"horizon": 5.0})
        record = execute_job(job)
        assert record["job_id"] == job.id
        assert record["job"] == job.to_dict()
        summary = record["summary"]
        assert summary["scheduler"] == "EDF" and summary["seed"] == 3
        assert "speed_error_rms" in summary

    def test_same_job_same_summary(self):
        job = Job(scenario="fig13", scheduler="HCPerf", seed=1,
                  overrides={"horizon": 5.0})
        assert execute_job(job)["summary"] == execute_job(job)["summary"]
