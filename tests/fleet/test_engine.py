"""Campaign engine: sharded execution, determinism, resume."""

import pytest

from repro.fleet import (
    CampaignSpec,
    ResultStore,
    build_manifest,
    campaign_status,
    render_store,
    run_campaign,
)


def small_spec(**kw):
    defaults = dict(
        name="t",
        scenarios=["fig13"],
        schedulers=["EDF", "HCPerf"],
        seeds=[0, 1],
        variants=[{"horizon": 5.0}],
    )
    defaults.update(kw)
    return CampaignSpec(**defaults)


class TestRunCampaign:
    def test_serial_run_completes(self, tmp_path):
        store = tmp_path / "c.jsonl"
        report = run_campaign(small_spec(), store=store, jobs=1)
        assert report.complete and report.executed == 4 and report.skipped == 0
        assert len(ResultStore(store)) == 4

    def test_parallel_matches_serial_byte_identical(self):
        """The acceptance property: --jobs N never changes a number."""
        serial = ResultStore(None)
        parallel = ResultStore(None)
        run_campaign(small_spec(), store=serial, jobs=1)
        run_campaign(small_spec(), store=parallel, jobs=4)
        assert render_store(serial) == render_store(parallel)

    def test_resume_skips_stored_jobs(self, tmp_path):
        store = tmp_path / "c.jsonl"
        spec = small_spec()
        first = run_campaign(spec, store=store, jobs=1, max_jobs=3)
        assert first.executed == 3 and first.interrupted and not first.complete
        # simulate the kill tearing the final line mid-write
        with open(store, "a") as fh:
            fh.write('{"job_id": "x", "job"')
        second = run_campaign(spec, store=store, jobs=2)
        assert second.skipped == 3 and second.executed == 1 and second.complete
        # only the missing job ran — nothing was recomputed
        assert not set(first.executed_ids) & set(second.executed_ids)
        assert set(first.executed_ids) | set(second.executed_ids) == {
            j.id for j in build_manifest(spec)
        }
        third = run_campaign(spec, store=store, jobs=1)
        assert third.executed == 0 and third.skipped == 4

    def test_resumed_store_matches_uninterrupted(self, tmp_path):
        spec = small_spec()
        oneshot = tmp_path / "a.jsonl"
        resumed = tmp_path / "b.jsonl"
        run_campaign(spec, store=oneshot, jobs=1)
        run_campaign(spec, store=resumed, jobs=1, max_jobs=2)
        run_campaign(spec, store=resumed, jobs=2)
        assert render_store(oneshot) == render_store(resumed)

    def test_progress_messages(self):
        lines = []
        run_campaign(small_spec(seeds=[0]), store=None, jobs=1, progress=lines.append)
        assert any("running 2 jobs" in ln for ln in lines)
        assert any("[2/2]" in ln for ln in lines)

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            run_campaign(small_spec(), jobs=0)
        with pytest.raises(ValueError):
            run_campaign(small_spec(), max_jobs=-1)
        with pytest.raises(ValueError, match="unknown scenarios"):
            run_campaign(small_spec(scenarios=["bogus"]))


class TestCampaignStatus:
    def test_status_counts(self, tmp_path):
        store = tmp_path / "c.jsonl"
        spec = small_spec()
        run_campaign(spec, store=store, jobs=1, max_jobs=1)
        status = campaign_status(spec, store)
        assert status["total"] == 4 and status["done"] == 1
        assert len(status["pending"]) == 3
        assert status["stray"] == []

    def test_stray_records_reported(self, tmp_path):
        store = ResultStore(tmp_path / "c.jsonl")
        store.append({"job_id": "alien", "job": {}, "summary": {}})
        status = campaign_status(small_spec(), store)
        assert status["stray"] == ["alien"]
