"""Campaign spec and manifest expansion."""

import pytest

from repro.fleet import CampaignSpec, build_manifest, job_id, load_spec


class TestCampaignSpec:
    def test_defaults_expand(self):
        spec = CampaignSpec()
        assert spec.n_jobs == 1 * 1 * 5 * 1

    def test_grid_size(self):
        spec = CampaignSpec(
            scenarios=["fig13", "hardware"],
            schedulers=["EDF", "HCPerf", "HPF"],
            seeds=[0, 1, 2, 3],
            variants=[{}, {"horizon": 10.0}],
        )
        assert spec.n_jobs == 2 * 2 * 3 * 4
        assert len(build_manifest(spec)) == spec.n_jobs

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError):
            CampaignSpec(scenarios=[])
        with pytest.raises(ValueError):
            CampaignSpec(schedulers=[])
        with pytest.raises(ValueError):
            CampaignSpec(seeds=[])
        with pytest.raises(ValueError):
            CampaignSpec(variants=[])

    def test_unknown_override_key_rejected(self):
        with pytest.raises(ValueError, match="unknown override"):
            CampaignSpec(variants=[{"warp_speed": 9}])

    def test_validate_checks_registries(self):
        with pytest.raises(ValueError, match="unknown scenarios"):
            CampaignSpec(scenarios=["not_a_scenario"]).validate()
        with pytest.raises(ValueError, match="unknown schedulers"):
            CampaignSpec(schedulers=["CFS"]).validate()
        CampaignSpec(scenarios=["fig13"], schedulers=["EDF"]).validate()

    def test_json_round_trip(self, tmp_path):
        spec = CampaignSpec(
            name="rt",
            scenarios=["fig13"],
            schedulers=["EDF"],
            seeds=[3, 1],
            variants=[{"horizon": 7.5}],
            metric="speed_error_rms",
        )
        path = tmp_path / "spec.json"
        spec.save(path)
        assert load_spec(path).to_dict() == spec.to_dict()

    def test_unknown_spec_field_rejected(self):
        with pytest.raises(ValueError, match="unknown spec fields"):
            CampaignSpec.from_dict({"name": "x", "color": "red"})


class TestManifest:
    def test_deterministic_order_and_ids(self):
        spec = CampaignSpec(
            scenarios=["fig13"], schedulers=["EDF", "HCPerf"], seeds=[0, 1]
        )
        a = build_manifest(spec)
        b = build_manifest(spec)
        assert [j.id for j in a] == [j.id for j in b]
        # scenario-major, then scheduler, then seed
        assert [(j.scheduler, j.seed) for j in a] == [
            ("EDF", 0), ("EDF", 1), ("HCPerf", 0), ("HCPerf", 1)
        ]

    def test_job_id_is_content_hash(self):
        assert job_id("fig13", "EDF", 0, {}) == job_id("fig13", "EDF", 0, {})
        assert job_id("fig13", "EDF", 0, {}) != job_id("fig13", "EDF", 1, {})
        assert job_id("fig13", "EDF", 0, {"horizon": 5.0}) != job_id(
            "fig13", "EDF", 0, {}
        )
        # key order inside overrides must not matter
        assert job_id("fig13", "EDF", 0, {"horizon": 5.0, "n_processors": 1}) == job_id(
            "fig13", "EDF", 0, {"n_processors": 1, "horizon": 5.0}
        )

    def test_ids_unique_across_grid(self):
        spec = CampaignSpec(
            scenarios=["fig13", "lane_keeping"],
            schedulers=["EDF", "HCPerf"],
            seeds=[0, 1, 2],
            variants=[{}, {"horizon": 6.0}],
        )
        ids = [j.id for j in build_manifest(spec)]
        assert len(set(ids)) == len(ids)
