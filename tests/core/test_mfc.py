"""Unit tests for the Model-Free Control performance-directed controller."""

import pytest

from repro.core import MFCConfig, ModelFreeController


class TestConfig:
    def test_alpha_must_be_negative(self):
        with pytest.raises(ValueError, match="alpha"):
            MFCConfig(alpha=1.0)
        with pytest.raises(ValueError, match="alpha"):
            MFCConfig(alpha=0.0)

    def test_feedback_gain_must_be_negative(self):
        with pytest.raises(ValueError, match="feedback_gain"):
            MFCConfig(feedback_gain=0.5)

    def test_timing_validation(self):
        with pytest.raises(ValueError):
            MFCConfig(sampling_period=0.0)
        with pytest.raises(ValueError):
            MFCConfig(ade_window=0.0)


class TestBehaviour:
    def feed_constant_error(self, error, steps=10, ts=0.5):
        mfc = ModelFreeController(MFCConfig())
        us = []
        for k in range(steps):
            t = k * ts
            for i in range(10):
                mfc.observe(t + i * ts / 10, error)
            us.append(mfc.update(t + ts, error))
        return mfc, us

    def test_positive_error_drives_u_up(self):
        # Eq. (8): with constant positive E, u integrates upward.
        _, us = self.feed_constant_error(1.0)
        assert us[-1] > us[0] > 0.0

    def test_negative_error_drives_u_down(self):
        _, us = self.feed_constant_error(-1.0)
        assert us[-1] < us[0] < 0.0

    def test_zero_error_keeps_u_stable(self):
        _, us = self.feed_constant_error(0.0)
        assert all(abs(u) < 1e-9 for u in us)

    def test_u_property_tracks_last_update(self):
        mfc = ModelFreeController()
        mfc.observe(0.0, 0.5)
        u = mfc.update(0.5, 0.5)
        assert mfc.u == u

    def test_f_hat_estimation(self):
        # With a ramp error and u = 0 initially, F̂ ≈ Ė.
        mfc = ModelFreeController(MFCConfig())
        for k in range(100):
            mfc.observe(k * 0.01, 2.0 * k * 0.01)
        mfc.update(1.0, 2.0)
        assert mfc.f_hat == pytest.approx(2.0, rel=0.05)

    def test_history_records_steps(self):
        mfc = ModelFreeController()
        mfc.observe(0.0, 0.1)
        mfc.update(0.5, 0.1)
        mfc.update(1.0, 0.2)
        assert len(mfc.history) == 2
        t, e, edot, u = mfc.history[-1]
        assert t == 1.0 and e == 0.2

    def test_reset(self):
        mfc = ModelFreeController(MFCConfig(u_initial=0.3))
        mfc.observe(0.0, 1.0)
        mfc.update(0.5, 1.0)
        mfc.reset()
        assert mfc.u == pytest.approx(0.3)
        assert mfc.history == []

    def test_gain_scale_divides_u(self):
        # A more negative alpha scales the command down proportionally.
        small = ModelFreeController(MFCConfig(alpha=-1.0))
        large = ModelFreeController(MFCConfig(alpha=-10.0))
        for mfc in (small, large):
            for i in range(10):
                mfc.observe(i * 0.05, 1.0)
        u_small = small.update(0.5, 1.0)
        u_large = large.update(0.5, 1.0)
        assert u_small == pytest.approx(10.0 * u_large, rel=1e-6)
