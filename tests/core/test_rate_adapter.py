"""Unit tests for the Task Rate Adapter (external coordinator)."""

import pytest

from repro.core import RateAdapterConfig, TaskRateAdapter


def adapter(**cfg_kwargs):
    cfg = RateAdapterConfig(**cfg_kwargs)
    a = TaskRateAdapter(cfg)
    a.set_rate_range("cam", 10.0, 40.0)
    a.set_rate_range("lidar", 10.0, 40.0)
    return a


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            RateAdapterConfig(target_miss_ratio=2.0)
        with pytest.raises(ValueError):
            RateAdapterConfig(epsilon=0.0)
        with pytest.raises(ValueError):
            RateAdapterConfig(kp_initial=-1.0)
        with pytest.raises(ValueError):
            RateAdapterConfig(kp_decay=1.5)
        with pytest.raises(ValueError):
            RateAdapterConfig(kp_floor=-0.1)
        with pytest.raises(ValueError):
            RateAdapterConfig(drift_reset_threshold=0.0)
        with pytest.raises(ValueError):
            RateAdapterConfig(utilization_bound=0.0)

    def test_rate_range_validation(self):
        a = TaskRateAdapter()
        with pytest.raises(ValueError):
            a.set_rate_range("x", 0.0, 10.0)
        with pytest.raises(ValueError):
            a.set_rate_range("x", 20.0, 10.0)


class TestErrorTerm:
    def test_epsilon_substitution_at_zero_miss(self):
        a = adapter(epsilon=0.05)
        assert a.error(0.0) == pytest.approx(0.05)

    def test_negative_error_when_missing(self):
        a = adapter(target_miss_ratio=0.0)
        assert a.error(0.1) == pytest.approx(-0.1)

    def test_target_offset(self):
        a = adapter(target_miss_ratio=0.05)
        assert a.error(0.02) == pytest.approx(0.03)


class TestEq13Step:
    def test_rates_increase_when_no_misses(self):
        a = adapter(epsilon=0.05, kp_initial=10.0)
        out = a.update(0.0, {"cam": 20.0, "lidar": 20.0})
        assert out["cam"] == pytest.approx(20.5)
        assert out["lidar"] == pytest.approx(20.5)

    def test_rates_decrease_when_overloaded(self):
        a = adapter(kp_initial=10.0)
        out = a.update(0.2, {"cam": 20.0})
        assert out["cam"] == pytest.approx(18.0)

    def test_clamped_to_range(self):
        a = adapter(kp_initial=1000.0)
        assert a.update(0.5, {"cam": 20.0})["cam"] == 10.0
        a2 = adapter(kp_initial=1000.0, epsilon=1.0)
        assert a2.update(0.0, {"cam": 20.0})["cam"] == 40.0

    def test_unregistered_task_unchanged(self):
        a = adapter(kp_initial=10.0)
        out = a.update(0.2, {"cam": 20.0, "gps": 50.0})
        assert out["gps"] == 50.0

    def test_relative_step_scales_with_rate(self):
        cfg = RateAdapterConfig(kp_initial=1.0, epsilon=0.1, relative_step=True)
        a = TaskRateAdapter(cfg)
        a.set_rate_range("slow", 1.0, 100.0)
        a.set_rate_range("fast", 1.0, 100.0)
        out = a.update(0.0, {"slow": 10.0, "fast": 50.0})
        assert out["slow"] == pytest.approx(11.0)
        assert out["fast"] == pytest.approx(55.0)


class TestKpDynamics:
    def test_kp_decays_when_stable(self):
        a = adapter(kp_initial=10.0, kp_decay=0.5, kp_floor=0.01)
        a.update(0.0, {"cam": 20.0})
        assert a.kp == pytest.approx(5.0)
        a.update(0.0, {"cam": 20.0})
        assert a.kp == pytest.approx(2.5)

    def test_kp_snaps_to_zero_below_floor(self):
        a = adapter(kp_initial=0.1, kp_decay=0.1, kp_floor=0.05)
        a.update(0.0, {"cam": 20.0})
        assert a.kp == 0.0

    def test_kp_held_while_missing(self):
        a = adapter(kp_initial=10.0, kp_decay=0.5)
        a.update(0.3, {"cam": 20.0})
        assert a.kp == pytest.approx(10.0)

    def test_drift_resets_kp(self):
        a = adapter(kp_initial=10.0, kp_decay=0.5, drift_reset_threshold=0.25)
        a.update(0.0, {"cam": 20.0})  # decays to 5
        a.update(0.0, {"cam": 20.0}, drift=0.5)  # reset fires first
        assert a.resets == 1
        # After the reset the stable window still decays once.
        assert a.kp == pytest.approx(5.0)

    def test_reset_method(self):
        a = adapter(kp_initial=10.0)
        a.update(0.0, {"cam": 20.0})
        a.reset()
        assert a.kp == pytest.approx(10.0)
        assert a.history == [] and a.resets == 0


class TestUtilizationBound:
    def test_increase_suppressed_above_bound(self):
        a = adapter(kp_initial=10.0, epsilon=0.05, utilization_bound=0.8)
        out = a.update(0.0, {"cam": 20.0}, utilization=0.95)
        # Forced decrease proportional to the excess (0.15).
        assert out["cam"] < 20.0

    def test_increase_allowed_below_bound(self):
        a = adapter(kp_initial=10.0, epsilon=0.05, utilization_bound=0.8)
        out = a.update(0.0, {"cam": 20.0}, utilization=0.5)
        assert out["cam"] > 20.0

    def test_kp_kept_alive_above_bound(self):
        a = adapter(kp_initial=10.0, kp_decay=0.5, utilization_bound=0.8)
        a.update(0.0, {"cam": 20.0}, utilization=0.95)
        assert a.kp == pytest.approx(10.0)  # no decay while over bound

    def test_none_utilization_skips_guard(self):
        a = adapter(kp_initial=10.0, epsilon=0.05)
        out = a.update(0.0, {"cam": 20.0}, utilization=None)
        assert out["cam"] > 20.0


class TestClosedLoop:
    def test_converges_to_stable_rate(self):
        """Feedback against a toy plant: misses grow with rate above 25 Hz."""
        a = adapter(kp_initial=20.0, kp_decay=0.9, epsilon=0.02)
        rate = 15.0
        for _ in range(60):
            miss = max(0.0, (rate - 25.0) / 25.0)
            rate = a.update(miss, {"cam": rate})["cam"]
        # Settles near (just under) the 25 Hz capacity cliff.
        assert 17.0 <= rate <= 30.0
        assert a.kp < 20.0  # authority decayed as it stabilized

    def test_history_recorded(self):
        a = adapter()
        a.update(0.1, {"cam": 20.0})
        a.update(0.0, {"cam": 20.0})
        assert len(a.history) == 2
        miss, err, kp = a.history[0]
        assert miss == pytest.approx(0.1)


class TestRateInvariants:
    def test_rates_always_within_range_under_any_inputs(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @given(
            misses=st.lists(
                st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=40
            ),
            utils=st.lists(
                st.floats(min_value=0.0, max_value=1.5), min_size=1, max_size=40
            ),
        )
        @settings(max_examples=40, deadline=None)
        def run(misses, utils):
            a = adapter(kp_initial=50.0, epsilon=0.5)
            rates = {"cam": 20.0, "lidar": 20.0}
            for miss, util in zip(misses, utils):
                rates = a.update(miss, rates, utilization=util)
                for v in rates.values():
                    assert 10.0 <= v <= 40.0

        run()
