"""Unit and property tests for the Dynamic Priority Scheduler core."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DynamicPriorityConfig, DynamicPriorityPolicy
from repro.rt import ConstantExecTime, Job, TaskSpec


def job(name="t", priority=1, release=0.0, exec_time=0.01, deadline=0.1):
    spec = TaskSpec(
        name=name,
        priority=priority,
        relative_deadline=deadline,
        exec_model=ConstantExecTime(exec_time),
    )
    return Job(task=spec, release_time=release, exec_time=exec_time)


POLICY = DynamicPriorityPolicy()
EST = lambda j: j.exec_time


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            DynamicPriorityConfig(gamma_cap=-1.0)
        with pytest.raises(ValueError):
            DynamicPriorityConfig(resolution=1)

    def test_defaults_sane(self):
        cfg = DynamicPriorityConfig()
        assert cfg.gamma_cap > 0 and cfg.resolution >= 2


class TestPriorityArithmetic:
    def test_scheduling_slack(self):
        j = job(release=1.0, exec_time=0.03, deadline=0.1)
        # latest start = 1.0 + 0.1 - 0.03 = 1.07; at now = 1.0 slack = 0.07
        assert POLICY.scheduling_slack(j, 1.0, 0.03) == pytest.approx(0.07)

    def test_slack_negative_when_doomed(self):
        j = job(release=0.0, exec_time=0.05, deadline=0.1)
        assert POLICY.scheduling_slack(j, 0.2, 0.05) < 0

    def test_gamma_zero_is_pure_slack_order(self):
        urgent = job("urgent", priority=9, release=0.0, deadline=0.05, exec_time=0.02)
        relaxed = job("relaxed", priority=1, release=0.0, deadline=0.5, exec_time=0.01)
        p_urgent = POLICY.dynamic_priority(urgent, 0.0, 0.0, 0.02)
        p_relaxed = POLICY.dynamic_priority(relaxed, 0.0, 0.0, 0.01)
        assert p_urgent < p_relaxed  # smaller P dispatches first

    def test_large_gamma_is_priority_order(self):
        urgent = job("urgent", priority=9, release=0.0, deadline=0.05, exec_time=0.02)
        relaxed = job("relaxed", priority=1, release=0.0, deadline=0.5, exec_time=0.01)
        gamma = 10.0  # dwarfs the slack difference
        p_urgent = POLICY.dynamic_priority(urgent, gamma, 0.0, 0.02)
        p_relaxed = POLICY.dynamic_priority(relaxed, gamma, 0.0, 0.01)
        assert p_relaxed < p_urgent

    def test_eq10_formula(self):
        j = job(priority=4, release=0.0, exec_time=0.02, deadline=0.1)
        p = POLICY.dynamic_priority(j, gamma=0.01, now=0.0, exec_estimate=0.02)
        assert p == pytest.approx(0.01 * 4 + 0.08)


class TestFeasibility:
    def test_empty_queue_feasible(self):
        assert POLICY.is_feasible(0.0, [], 0.0, EST, 0.0, 1)

    def test_single_fitting_job_feasible(self):
        jobs = [job(exec_time=0.01, deadline=0.1)]
        assert POLICY.is_feasible(0.0, jobs, 0.0, EST, 0.0, 1)

    def test_impossible_job_infeasible(self):
        jobs = [job(exec_time=0.2, deadline=0.1)]
        assert not POLICY.is_feasible(0.0, jobs, 0.0, EST, 0.0, 1)

    def test_busy_processors_consume_budget(self):
        jobs = [job(exec_time=0.05, deadline=0.1)]
        assert POLICY.is_feasible(0.0, jobs, 0.0, EST, busy_remaining=0.0, n_processors=1)
        # 0.06 s of in-flight work pushes the start past the latest-start point.
        assert not POLICY.is_feasible(
            0.0, jobs, 0.0, EST, busy_remaining=0.06, n_processors=1
        )

    def test_higher_priority_workload_blocks(self):
        first = job("a", priority=1, exec_time=0.06, deadline=1.0)
        tight = job("b", priority=9, exec_time=0.05, deadline=0.1)
        jobs = [first, tight]
        # Huge gamma puts 'a' ahead of 'b'; its 0.06 s then breaks b's 0.1 s
        # deadline (0.06 + 0.05 > 0.1).
        assert not POLICY.is_feasible(10.0, jobs, 0.0, EST, 0.0, 1)
        # gamma = 0: slack ordering runs 'b' first; both fit.
        assert POLICY.is_feasible(0.0, jobs, 0.0, EST, 0.0, 1)

    def test_equal_priority_jobs_do_not_block_each_other(self):
        # Two identical jobs: with strict P_i < P_j neither counts against
        # the other, so each only needs its own time.
        a = job("a", priority=1, exec_time=0.06, deadline=0.1)
        b = job("b", priority=1, exec_time=0.06, deadline=0.1)
        assert POLICY.is_feasible(0.0, [a, b], 0.0, EST, 0.0, 1)

    def test_more_processors_help(self):
        jobs = [
            job("a", priority=1, exec_time=0.06, deadline=0.1),
            job("b", priority=9, exec_time=0.05, deadline=0.1),
        ]
        assert not POLICY.is_feasible(10.0, jobs, 0.0, EST, 0.0, 1)
        assert POLICY.is_feasible(10.0, jobs, 0.0, EST, 0.0, 2)


class TestGammaMax:
    def test_empty_queue_returns_cap(self):
        policy = DynamicPriorityPolicy(DynamicPriorityConfig(gamma_cap=0.02))
        assert policy.gamma_max([], 0.0, EST, 0.0, 2) == pytest.approx(0.02)

    def test_overload_returns_none(self):
        jobs = [job(exec_time=0.2, deadline=0.1)]
        assert POLICY.gamma_max(jobs, 0.0, EST, 0.0, 1) is None

    def test_relaxed_queue_allows_cap(self):
        policy = DynamicPriorityPolicy(DynamicPriorityConfig(gamma_cap=0.02))
        jobs = [job(f"t{i}", priority=i + 1, exec_time=0.001, deadline=1.0) for i in range(4)]
        assert policy.gamma_max(jobs, 0.0, EST, 0.0, 2) == pytest.approx(0.02)

    def test_contended_queue_bounds_gamma(self):
        # 'heavy' (low priority) must run first or 'tight' dies; large gamma
        # would re-order them, so gamma_max must be small.
        policy = DynamicPriorityPolicy(DynamicPriorityConfig(gamma_cap=1.0, resolution=101))
        heavy = job("heavy", priority=9, exec_time=0.05, deadline=0.06)
        light = job("light", priority=1, exec_time=0.05, deadline=1.0)
        gmax = policy.gamma_max([heavy, light], 0.0, EST, 0.0, 1)
        assert gmax is not None
        # At the feasible gamma, heavy must still outrank light.
        p_heavy = policy.dynamic_priority(heavy, gmax, 0.0, 0.05)
        p_light = policy.dynamic_priority(light, gmax, 0.0, 0.05)
        assert p_heavy < p_light


class TestClamp:
    def test_eq12_cases(self):
        assert DynamicPriorityPolicy.clamp_gamma(-1.0, 0.5) == 0.0
        assert DynamicPriorityPolicy.clamp_gamma(0.3, 0.5) == pytest.approx(0.3)
        assert DynamicPriorityPolicy.clamp_gamma(0.9, 0.5) == pytest.approx(0.5)

    def test_overload_forces_zero(self):
        assert DynamicPriorityPolicy.clamp_gamma(0.3, None) == 0.0

    @given(
        u=st.floats(min_value=-100.0, max_value=100.0),
        gmax=st.floats(min_value=0.0, max_value=50.0),
    )
    @settings(max_examples=100)
    def test_clamp_always_within_bounds(self, u, gmax):
        gamma = DynamicPriorityPolicy.clamp_gamma(u, gmax)
        assert 0.0 <= gamma <= gmax


class TestResolve:
    def test_resolve_feasible(self):
        jobs = [job(exec_time=0.001, deadline=1.0)]
        result = POLICY.resolve(0.005, jobs, 0.0, EST, 0.0, 2)
        assert result.feasible and not result.overloaded
        assert result.gamma == pytest.approx(0.005)

    def test_resolve_overloaded(self):
        jobs = [job(exec_time=0.2, deadline=0.1)]
        result = POLICY.resolve(0.005, jobs, 0.0, EST, 0.0, 1)
        assert result.overloaded and result.gamma == 0.0 and not result.feasible


def _modes(**overrides):
    """One policy per γ search mode, identically configured."""
    return {
        mode: DynamicPriorityPolicy(DynamicPriorityConfig(mode=mode, **overrides))
        for mode in ("scalar", "vectorized", "breakpoint")
    }


def _assert_modes_agree(jobs, now, busy, n_p, **overrides):
    results = {
        mode: policy.resolve(0.01, jobs, now, EST, busy, n_p)
        for mode, policy in _modes(**overrides).items()
    }
    scalar = results["scalar"]
    for mode in ("vectorized", "breakpoint"):
        # Bitwise equality, not approx: the batched paths replay the scalar
        # oracle's float operations exactly.
        assert results[mode] == scalar, (mode, results[mode], scalar)
    return scalar


class TestSearchModeAgreement:
    """Scalar oracle vs vectorized grid vs breakpoint walk (tentpole)."""

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            DynamicPriorityConfig(mode="magic")
        with pytest.raises(ValueError):
            DynamicPriorityConfig(cache_tolerance=-0.1)

    def test_empty_queue(self):
        result = _assert_modes_agree([], 0.0, 0.0, 2)
        assert result.gamma_max == DynamicPriorityConfig().gamma_cap

    def test_exact_equal_priority_ties(self):
        # Identical triplets: P_i ties exactly at every γ, exercising the
        # equal-P grouping (strict inequality in Eq. 11) in all modes.
        jobs = [job(f"t{i}", priority=2, exec_time=0.04, deadline=0.1) for i in range(3)]
        jobs += [job(f"u{i}", priority=5, exec_time=0.01, deadline=0.3) for i in range(2)]
        _assert_modes_agree(jobs, 0.0, 0.0, 1)

    def test_overloaded_queue(self):
        jobs = [job(f"t{i}", priority=i % 3, exec_time=0.2, deadline=0.1) for i in range(4)]
        result = _assert_modes_agree(jobs, 0.0, 0.0, 1)
        assert result.overloaded

    def test_grid_point_on_breakpoint(self):
        # Two jobs whose P_i crossing lands near a coarse grid point; the
        # breakpoint walk must evaluate the exact-hit point on its own.
        a = job("a", priority=3, exec_time=0.01, deadline=0.1)
        b = job("b", priority=1, exec_time=0.01, deadline=0.12)
        _assert_modes_agree([a, b], 0.0, 0.0, 1, gamma_cap=0.02, resolution=5)

    def test_gamma_breakpoints_enumerates_crossings(self):
        policy = DynamicPriorityPolicy(DynamicPriorityConfig(gamma_cap=1.0))
        a = job("a", priority=3, exec_time=0.01, deadline=0.1)
        b = job("b", priority=1, exec_time=0.01, deadline=0.12)
        points = policy.gamma_breakpoints([a, b], 0.0, EST)
        assert len(points) == 1
        # γ* = (slack_b − slack_a)/(p_a − p_b) = 0.02/2
        assert points[0] == pytest.approx(0.01)

    @given(
        specs=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),      # priority (ties likely)
                st.floats(min_value=0.001, max_value=0.15), # exec time
                st.floats(min_value=0.01, max_value=0.4),   # relative deadline
                st.floats(min_value=0.0, max_value=0.05),   # release
            ),
            min_size=0,
            max_size=8,
        ),
        now=st.floats(min_value=0.0, max_value=0.2),
        busy=st.floats(min_value=0.0, max_value=0.1),
        n_p=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=60, deadline=None)
    def test_randomized_queues(self, specs, now, busy, n_p):
        jobs = [
            job(f"t{i}", priority=p, exec_time=c, deadline=d, release=r)
            for i, (p, c, d, r) in enumerate(specs)
        ]
        _assert_modes_agree(jobs, now, busy, n_p)


class TestOrderingCache:
    """Cross-step sort-permutation reuse (vectorized mode)."""

    def make_jobs(self, n=6):
        return [
            job(f"t{i}", priority=i % 3 + 1, exec_time=0.01 + 0.002 * i, deadline=0.5)
            for i in range(n)
        ]

    def test_repeat_resolution_hits_cache(self):
        policy = DynamicPriorityPolicy()
        jobs = self.make_jobs()
        first = policy.resolve(0.01, jobs, 0.0, EST, 0.0, 2)
        second = policy.resolve(0.01, jobs, 0.001, EST, 0.0, 2)
        assert policy.cache_misses == 1 and policy.cache_hits == 1
        # The cached ordering can never change the result.
        fresh = DynamicPriorityPolicy(
            DynamicPriorityConfig(cache_tolerance=None)
        ).resolve(0.01, jobs, 0.001, EST, 0.0, 2)
        assert second == fresh
        assert first.feasible

    def test_membership_change_invalidates(self):
        policy = DynamicPriorityPolicy()
        jobs = self.make_jobs()
        policy.resolve(0.01, jobs, 0.0, EST, 0.0, 2)
        policy.resolve(0.01, jobs[:-1], 0.0, EST, 0.0, 2)
        assert policy.cache_hits == 0 and policy.cache_misses == 2

    def test_estimate_drift_invalidates(self):
        policy = DynamicPriorityPolicy(DynamicPriorityConfig(cache_tolerance=0.05))
        jobs = self.make_jobs()
        policy.resolve(0.01, jobs, 0.0, EST, 0.0, 2)
        drifted = lambda j: j.exec_time * 1.5  # 50% >> 5% tolerance
        result = policy.resolve(0.01, jobs, 0.0, drifted, 0.0, 2)
        assert policy.cache_hits == 0 and policy.cache_misses == 2
        fresh = DynamicPriorityPolicy(
            DynamicPriorityConfig(cache_tolerance=None)
        ).resolve(0.01, jobs, 0.0, drifted, 0.0, 2)
        assert result == fresh

    def test_small_drift_still_hits_and_matches_fresh_sort(self):
        policy = DynamicPriorityPolicy(DynamicPriorityConfig(cache_tolerance=0.05))
        jobs = self.make_jobs()
        policy.resolve(0.01, jobs, 0.0, EST, 0.0, 2)
        nudged = lambda j: j.exec_time * 1.01  # within tolerance
        result = policy.resolve(0.01, jobs, 0.0, nudged, 0.0, 2)
        assert policy.cache_hits == 1
        fresh = DynamicPriorityPolicy(
            DynamicPriorityConfig(cache_tolerance=None)
        ).resolve(0.01, jobs, 0.0, nudged, 0.0, 2)
        assert result == fresh

    def test_tied_orderings_never_reuse(self):
        # Equal-P rows fail strict-sort validation, so ties always re-sort.
        policy = DynamicPriorityPolicy()
        jobs = [job(f"t{i}", priority=2, exec_time=0.01, deadline=0.2) for i in range(3)]
        policy.resolve(0.01, jobs, 0.0, EST, 0.0, 2)
        policy.resolve(0.01, jobs, 0.0, EST, 0.0, 2)
        assert policy.cache_hits == 0 and policy.cache_misses == 2

    def test_invalidate_cache_and_none_tolerance(self):
        policy = DynamicPriorityPolicy()
        jobs = self.make_jobs()
        policy.resolve(0.01, jobs, 0.0, EST, 0.0, 2)
        policy.invalidate_cache()
        policy.resolve(0.01, jobs, 0.0, EST, 0.0, 2)
        assert policy.cache_hits == 0 and policy.cache_misses == 2
        disabled = DynamicPriorityPolicy(DynamicPriorityConfig(cache_tolerance=None))
        disabled.resolve(0.01, jobs, 0.0, EST, 0.0, 2)
        disabled.resolve(0.01, jobs, 0.0, EST, 0.0, 2)
        assert disabled.cache_hits == 0 and disabled.cache_misses == 2
