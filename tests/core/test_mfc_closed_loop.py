"""Closed-loop theory tests for the MFC controller.

Note on timescales: the ADE window estimates the derivative with ~window/2
of lag; for closed-loop stability it must stay commensurate with the MFC
sampling period (window 0.3 s, T_s 0.25 s here).  In the scheduler, u is
clamped into [0, gamma_max], which bounds the effect of any mistuning.

The controller is designed for the ultra-local model ``Ė = F + α·u``
(paper Eq. 2).  Simulating exactly that plant validates the analysis of
Eq. (4): with ``F̂ ≈ F`` the tracking error converges into a bounded ball
around zero for constant and slowly-varying disturbances.
"""

import math


from repro.core import MFCConfig, ModelFreeController


def simulate_ultra_local(
    controller: ModelFreeController,
    disturbance,
    alpha: float,
    e0: float = 2.0,
    t_end: float = 30.0,
    dt: float = 0.01,
    ts: float = 0.25,
):
    """Integrate Ė = F(t) + α·u with the controller in the loop."""
    e, u = e0, controller.u
    next_sample = ts
    history = []
    t = 0.0
    while t < t_end:
        e += (disturbance(t) + alpha * u) * dt
        t += dt
        controller.observe(t, e)
        if t >= next_sample:
            u = controller.update(t, e)
            next_sample += ts
        history.append((t, e))
    return history


class TestClosedLoopConvergence:
    def test_constant_disturbance_rejected(self):
        cfg = MFCConfig(alpha=-1.0, feedback_gain=-1.0, ade_window=0.3)
        mfc = ModelFreeController(cfg)
        hist = simulate_ultra_local(mfc, lambda t: 0.5, alpha=-1.0)
        tail = [abs(e) for _, e in hist if _ > 20.0]
        assert max(tail) < 0.15

    def test_zero_disturbance_decay(self):
        cfg = MFCConfig(alpha=-1.0, feedback_gain=-1.0, ade_window=0.3)
        mfc = ModelFreeController(cfg)
        hist = simulate_ultra_local(mfc, lambda t: 0.0, alpha=-1.0, e0=3.0)
        assert abs(hist[-1][1]) < 0.1
        # Decay is monotone-ish: the error at 10 s is well below the start.
        e10 = next(abs(e) for t, e in hist if t >= 10.0)
        assert e10 < 1.0

    def test_slowly_varying_disturbance_bounded(self):
        cfg = MFCConfig(alpha=-1.0, feedback_gain=-1.0, ade_window=0.3)
        mfc = ModelFreeController(cfg)
        hist = simulate_ultra_local(
            mfc, lambda t: 0.5 * math.sin(0.2 * t), alpha=-1.0, t_end=40.0
        )
        tail = [abs(e) for t, e in hist if t > 20.0]
        # Bounded ball around the origin (paper's Eq. 4 argument).
        assert max(tail) < 0.5

    def test_plant_gain_mismatch_tolerated(self):
        # The controller assumes alpha = -1 but the plant has alpha = -2:
        # MFC's F-hat absorbs the mismatch (that is the point of the method).
        cfg = MFCConfig(alpha=-1.0, feedback_gain=-1.0, ade_window=0.3)
        mfc = ModelFreeController(cfg)
        hist = simulate_ultra_local(mfc, lambda t: 0.3, alpha=-2.0)
        tail = [abs(e) for t, e in hist if t > 20.0]
        assert max(tail) < 0.3

    def test_faster_feedback_gain_tracks_tighter(self):
        def run(k):
            cfg = MFCConfig(alpha=-1.0, feedback_gain=k, ade_window=0.3)
            hist = simulate_ultra_local(
                ModelFreeController(cfg), lambda t: 0.5, alpha=-1.0
            )
            return max(abs(e) for t, e in hist if t > 20.0)

        assert run(-3.0) <= run(-0.3) + 1e-9
