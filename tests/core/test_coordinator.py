"""Unit tests for the hierarchical coordinator façade."""

import pytest

from repro.core import GammaHistory, HCPerfConfig, HierarchicalCoordinator
from repro.obs.metrics import MetricsRegistry
from repro.rt import ConstantExecTime, ExecTimeObserver, Job, TaskSpec


def job(name="t", priority=1, exec_time=0.01, deadline=0.1):
    spec = TaskSpec(
        name=name, priority=priority, relative_deadline=deadline,
        exec_model=ConstantExecTime(exec_time),
    )
    return Job(task=spec, release_time=0.0, exec_time=exec_time)


class TestInternalCoordinator:
    def test_report_performance_updates_error(self):
        c = HierarchicalCoordinator()
        c.report_performance(0.0, 1.5)
        assert c.tracking_error == 1.5

    def test_sample_controller_returns_u(self):
        c = HierarchicalCoordinator()
        for i in range(10):
            c.report_performance(i * 0.05, 1.0)
        u = c.sample_controller(0.5)
        assert u == c.mfc.u
        assert u > 0.0

    def test_resolve_gamma_records_history(self):
        c = HierarchicalCoordinator()
        jobs = [job(exec_time=0.001, deadline=1.0)]
        result = c.resolve_gamma(0.0, jobs, lambda j: j.exec_time, 0.0, 2)
        assert c.last_result is result
        assert c.gamma_history == [(0.0, result.gamma)]

    def test_overload_counted(self):
        c = HierarchicalCoordinator()
        doomed = [job(exec_time=0.5, deadline=0.1)]
        result = c.resolve_gamma(0.0, doomed, lambda j: j.exec_time, 0.0, 1)
        assert result.overloaded
        assert c.overload_windows == 1


class TestGammaHistoryRing:
    def test_limit_validation(self):
        with pytest.raises(ValueError):
            GammaHistory(0)
        with pytest.raises(ValueError):
            HCPerfConfig(gamma_history_limit=0)

    def test_list_like_behaviour(self):
        ring = GammaHistory(8)
        ring.append((0.0, 0.1))
        ring.append((0.5, 0.2))
        assert len(ring) == 2
        assert ring[0] == (0.0, 0.1) and ring[-1] == (0.5, 0.2)
        assert ring[:1] == [(0.0, 0.1)]
        assert list(ring) == [(0.0, 0.1), (0.5, 0.2)]
        assert ring == [(0.0, 0.1), (0.5, 0.2)]

    def test_eviction_keeps_newest_and_counts(self):
        ring = GammaHistory(3)
        for i in range(5):
            ring.append((float(i), 0.0))
        assert len(ring) == 3
        assert ring.total == 5 and ring.dropped == 2
        assert [t for t, _ in ring] == [2.0, 3.0, 4.0]

    def test_clear_resets_counters(self):
        ring = GammaHistory(2)
        for i in range(4):
            ring.append((float(i), 0.0))
        ring.clear()
        assert len(ring) == 0 and ring.total == 0 and ring.dropped == 0

    def test_coordinator_bounds_history_and_reports_metric(self):
        metrics = MetricsRegistry()
        c = HierarchicalCoordinator(
            HCPerfConfig(gamma_history_limit=4), metrics=metrics
        )
        jobs = [job(exec_time=0.001, deadline=1.0)]
        for i in range(10):
            c.resolve_gamma(i * 0.01, jobs, lambda j: j.exec_time, 0.0, 2)
        assert len(c.gamma_history) == 4
        assert c.gamma_history.total == 10
        assert c.gamma_history.dropped == 6
        assert metrics.counter("gamma_history_dropped").value == 6

    def test_default_limit_is_generous(self):
        c = HierarchicalCoordinator()
        assert c.gamma_history.limit == HCPerfConfig().gamma_history_limit >= 65536


class TestExternalCoordinator:
    def test_adapt_rates_disabled_returns_none(self):
        c = HierarchicalCoordinator(HCPerfConfig(enable_external=False))
        obs = ExecTimeObserver()
        assert c.adapt_rates(0.1, {"cam": 20.0}, obs) is None

    def test_adapt_rates_applies_update(self):
        c = HierarchicalCoordinator()
        c.rate_adapter.set_rate_range("cam", 10.0, 40.0)
        obs = ExecTimeObserver()
        out = c.adapt_rates(0.0, {"cam": 20.0}, obs)
        assert out is not None and out["cam"] > 20.0

    def test_drift_triggers_stable_remark(self):
        c = HierarchicalCoordinator()
        c.rate_adapter.set_rate_range("cam", 10.0, 40.0)
        obs = ExecTimeObserver(alpha=1.0)
        obs.observe("t", 0.02)
        obs.mark_stable()
        obs.observe("t", 0.06)  # 200% drift
        assert obs.max_drift() > c.config.rate.drift_reset_threshold
        c.adapt_rates(0.0, {"cam": 20.0}, obs)
        # The coordinator re-baselines the observer after the reset.
        assert obs.max_drift() == pytest.approx(0.0)
        assert c.rate_adapter.resets == 1


class TestReset:
    def test_reset_restores_everything(self):
        c = HierarchicalCoordinator()
        c.report_performance(0.0, 2.0)
        c.sample_controller(0.5)
        c.resolve_gamma(0.0, [job()], lambda j: j.exec_time, 0.0, 2)
        c.reset()
        assert c.tracking_error == 0.0
        assert c.gamma_history == []
        assert c.last_result is None
        assert c.overload_windows == 0
        assert c.mfc.history == []
