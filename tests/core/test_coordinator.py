"""Unit tests for the hierarchical coordinator façade."""

import pytest

from repro.core import HCPerfConfig, HierarchicalCoordinator
from repro.rt import ConstantExecTime, ExecTimeObserver, Job, TaskSpec


def job(name="t", priority=1, exec_time=0.01, deadline=0.1):
    spec = TaskSpec(
        name=name, priority=priority, relative_deadline=deadline,
        exec_model=ConstantExecTime(exec_time),
    )
    return Job(task=spec, release_time=0.0, exec_time=exec_time)


class TestInternalCoordinator:
    def test_report_performance_updates_error(self):
        c = HierarchicalCoordinator()
        c.report_performance(0.0, 1.5)
        assert c.tracking_error == 1.5

    def test_sample_controller_returns_u(self):
        c = HierarchicalCoordinator()
        for i in range(10):
            c.report_performance(i * 0.05, 1.0)
        u = c.sample_controller(0.5)
        assert u == c.mfc.u
        assert u > 0.0

    def test_resolve_gamma_records_history(self):
        c = HierarchicalCoordinator()
        jobs = [job(exec_time=0.001, deadline=1.0)]
        result = c.resolve_gamma(0.0, jobs, lambda j: j.exec_time, 0.0, 2)
        assert c.last_result is result
        assert c.gamma_history == [(0.0, result.gamma)]

    def test_overload_counted(self):
        c = HierarchicalCoordinator()
        doomed = [job(exec_time=0.5, deadline=0.1)]
        result = c.resolve_gamma(0.0, doomed, lambda j: j.exec_time, 0.0, 1)
        assert result.overloaded
        assert c.overload_windows == 1


class TestExternalCoordinator:
    def test_adapt_rates_disabled_returns_none(self):
        c = HierarchicalCoordinator(HCPerfConfig(enable_external=False))
        obs = ExecTimeObserver()
        assert c.adapt_rates(0.1, {"cam": 20.0}, obs) is None

    def test_adapt_rates_applies_update(self):
        c = HierarchicalCoordinator()
        c.rate_adapter.set_rate_range("cam", 10.0, 40.0)
        obs = ExecTimeObserver()
        out = c.adapt_rates(0.0, {"cam": 20.0}, obs)
        assert out is not None and out["cam"] > 20.0

    def test_drift_triggers_stable_remark(self):
        c = HierarchicalCoordinator()
        c.rate_adapter.set_rate_range("cam", 10.0, 40.0)
        obs = ExecTimeObserver(alpha=1.0)
        obs.observe("t", 0.02)
        obs.mark_stable()
        obs.observe("t", 0.06)  # 200% drift
        assert obs.max_drift() > c.config.rate.drift_reset_threshold
        c.adapt_rates(0.0, {"cam": 20.0}, obs)
        # The coordinator re-baselines the observer after the reset.
        assert obs.max_drift() == pytest.approx(0.0)
        assert c.rate_adapter.resets == 1


class TestReset:
    def test_reset_restores_everything(self):
        c = HierarchicalCoordinator()
        c.report_performance(0.0, 2.0)
        c.sample_controller(0.5)
        c.resolve_gamma(0.0, [job()], lambda j: j.exec_time, 0.0, 2)
        c.reset()
        assert c.tracking_error == 0.0
        assert c.gamma_history == []
        assert c.last_result is None
        assert c.overload_windows == 0
        assert c.mfc.history == []
