"""Unit and property tests for the Algebraic Differentiation Estimator."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AlgebraicDifferentiator


def feed(ade, fn, t0=0.0, t1=3.0, dt=0.01):
    t = t0
    while t <= t1 + 1e-12:
        ade.add_sample(t, fn(t))
        t += dt
    return ade


class TestBasics:
    def test_invalid_window(self):
        with pytest.raises(ValueError):
            AlgebraicDifferentiator(window=0.0)

    def test_empty_estimate_is_zero(self):
        assert AlgebraicDifferentiator(1.0).estimate() == 0.0

    def test_single_sample_estimate_is_zero(self):
        ade = AlgebraicDifferentiator(1.0)
        ade.add_sample(0.0, 5.0)
        assert ade.estimate() == 0.0

    def test_out_of_order_rejected(self):
        ade = AlgebraicDifferentiator(1.0)
        ade.add_sample(1.0, 0.0)
        with pytest.raises(ValueError, match="out-of-order"):
            ade.add_sample(0.5, 0.0)

    def test_equal_timestamps_allowed(self):
        ade = AlgebraicDifferentiator(1.0)
        ade.add_sample(1.0, 0.0)
        ade.add_sample(1.0, 0.1)  # same instant: fine (sensor burst)

    def test_clear(self):
        ade = feed(AlgebraicDifferentiator(1.0), lambda t: t)
        ade.clear()
        assert len(ade) == 0
        assert ade.estimate() == 0.0

    def test_window_evicts_old_samples(self):
        ade = AlgebraicDifferentiator(window=0.5)
        for k in range(200):
            ade.add_sample(k * 0.01, 0.0)
        # Roughly window/dt samples retained (plus the edge sample).
        assert len(ade) <= 0.5 / 0.01 + 2


class TestAccuracy:
    def test_constant_signal_zero_derivative(self):
        ade = feed(AlgebraicDifferentiator(1.0), lambda t: 7.5)
        assert ade.estimate() == pytest.approx(0.0, abs=1e-9)

    def test_linear_ramp(self):
        ade = feed(AlgebraicDifferentiator(1.0), lambda t: 2.0 * t)
        assert ade.estimate() == pytest.approx(2.0, rel=1e-3)

    def test_negative_slope(self):
        ade = feed(AlgebraicDifferentiator(1.0), lambda t: -3.0 * t + 1.0)
        assert ade.estimate() == pytest.approx(-3.0, rel=1e-3)

    def test_sine_derivative_tracks_cosine(self):
        # With a short window the estimate approximates cos(t) with lag.
        ade = AlgebraicDifferentiator(window=0.3)
        feed(ade, math.sin, t1=2.0, dt=0.005)
        true = math.cos(2.0)
        assert ade.estimate() == pytest.approx(true, abs=0.15)

    def test_noise_attenuation(self):
        # The windowed integral should beat naive finite differences on a
        # noisy ramp.
        rng = random.Random(3)
        ade = AlgebraicDifferentiator(window=1.0)
        samples = []
        for k in range(400):
            t = k * 0.01
            v = 2.0 * t + rng.gauss(0.0, 0.05)
            samples.append((t, v))
            ade.add_sample(t, v)
        naive = (samples[-1][1] - samples[-2][1]) / 0.01
        assert abs(ade.estimate() - 2.0) < abs(naive - 2.0)
        assert ade.estimate() == pytest.approx(2.0, abs=0.3)

    @given(
        slope=st.floats(min_value=-10.0, max_value=10.0),
        intercept=st.floats(min_value=-5.0, max_value=5.0),
    )
    @settings(max_examples=40)
    def test_linear_functions_recovered(self, slope, intercept):
        ade = AlgebraicDifferentiator(window=1.0)
        feed(ade, lambda t: slope * t + intercept, t1=2.0)
        assert ade.estimate() == pytest.approx(slope, rel=1e-2, abs=1e-3)

    def test_partial_window_still_estimates(self):
        # Fewer samples than the window width: effective-width integral.
        ade = AlgebraicDifferentiator(window=10.0)
        for k in range(20):
            ade.add_sample(k * 0.01, 4.0 * k * 0.01)
        assert ade.estimate() == pytest.approx(4.0, rel=5e-2)
